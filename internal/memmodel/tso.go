package memmodel

import (
	"fmt"
	"math/rand"

	"waffle/internal/sim"
	"waffle/internal/trace"
)

// TSO mode: per-thread store buffers over Ref state transitions.
//
// Under sequential consistency every Init/Dispose becomes globally visible
// the instant it executes. Under TSO (x86-style total store order) a store
// first enters the issuing thread's store buffer and only later commits to
// memory; the issuing thread reads its own buffered stores (store-to-load
// forwarding) while every other thread keeps observing the pre-store state
// until the commit. The model here is the timing-based TSO semantics of
// "Time, Fences and the Ordering of Events in TSO" (arxiv 2508.11415)
// specialized to the lifecycle state machine: each buffered store carries a
// commit deadline (visibleAt) drawn from a heap-local seeded RNG, commits
// are applied lazily in deadline order at every subsequent access, and
// per-thread FIFO order is enforced by making each store's deadline
// monotone within its thread — exactly a store buffer draining in order.
//
// Timing never changes: TSO mode alters only which state an access
// *observes*, never when anything executes, so preparation traces (and the
// plans derived from them) are byte-identical to sequential-consistency
// runs of the same program. That is what lets Waffle's unchanged
// delay-injection machinery search for stale reads: delaying a store's
// *visibility* (AddFlushDelay) widens the stale window without perturbing
// any thread, so a fence-free read lands inside it.

// TSOConfig parameterizes a heap's store-buffer model.
type TSOConfig struct {
	// Seed drives the flush-latency RNG. It is deliberately separate from
	// the world seed: flush timing must not perturb scheduling randomness,
	// or TSO-mode prep traces would diverge from SC ones.
	Seed int64
	// FlushMin and FlushMax bound the commit latency drawn per store.
	// Both zero means the defaults; a negative FlushMin means zero latency
	// (stores commit instantly — provably equivalent to SC).
	FlushMin, FlushMax sim.Duration
}

// Default store-buffer drain latencies. Far below the multi-millisecond
// gaps genprog plants, so an undelayed run always commits before the
// reader arrives — stale reads manifest only when injection widens the
// window.
const (
	DefaultFlushMin = 20 * sim.Microsecond
	DefaultFlushMax = 200 * sim.Microsecond
)

func (c TSOConfig) withDefaults() TSOConfig {
	if c.FlushMin == 0 && c.FlushMax == 0 {
		c.FlushMin, c.FlushMax = DefaultFlushMin, DefaultFlushMax
	}
	if c.FlushMin < 0 {
		c.FlushMin = 0
	}
	if c.FlushMax < c.FlushMin {
		c.FlushMax = c.FlushMin
	}
	return c
}

// pendingStore is one buffered state transition awaiting commit.
type pendingStore struct {
	state     State
	tid       int
	site      trace.SiteID
	kind      trace.Kind
	at        sim.Time // when the store was issued
	visibleAt sim.Time // when it commits to shared memory
}

// tsoState is the heap's store-buffer machinery.
type tsoState struct {
	cfg TSOConfig
	rng *rand.Rand
	// lastVisible enforces per-thread FIFO drain: a store's deadline never
	// precedes an earlier store's deadline from the same thread.
	lastVisible map[int]sim.Time
}

// EnableTSO switches the heap to TSO semantics. Must be called before the
// first instrumented access, like SetHook.
func (h *Heap) EnableTSO(cfg TSOConfig) {
	if h.accessed {
		panic("memmodel: EnableTSO after the first instrumented access")
	}
	cfg = cfg.withDefaults()
	h.tso = &tsoState{
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		lastVisible: make(map[int]sim.Time),
	}
}

// TSOEnabled reports whether the heap runs under TSO semantics.
func (h *Heap) TSOEnabled() bool { return h.tso != nil }

// StaleReadError is the weak-memory analog of NullRefError: a fresh read
// (Ref.UseFresh) observed a state that diverges from the coherent one
// because another thread's store is still sitting in its store buffer — a
// stale read a fence after the blamed store would forbid.
type StaleReadError struct {
	Obj      trace.ObjID
	Name     string       // the reference's declared name
	Site     trace.SiteID // where the stale read happened
	Observed State        // what the read saw
	Coherent State        // what a fully fenced execution would have seen
	// The blamed store: the oldest other-thread store still buffered at
	// the read — the write a repair fence must flush before this read.
	PendingSite trace.SiteID
	PendingKind trace.Kind
	PendingTID  int
	VisibleAt   sim.Time // when the blamed store would have committed
}

// Error implements error.
func (e *StaleReadError) Error() string {
	return fmt.Sprintf("StaleReadException: read of %q (obj %d) at %s observed %s while %s at %s is buffered (coherent %s, commits at %dus)",
		e.Name, e.Obj, e.Site, e.Observed, e.PendingKind, e.PendingSite, e.Coherent, int64(e.VisibleAt))
}

// flushDelayKey is the TLS slot injectors use to stretch the commit
// latency of a thread's next buffered store.
const flushDelayKey sim.TLSKey = "memmodel.tso.flushdelay"

// AddFlushDelay arranges for thread t's next buffered store to commit an
// extra d later than its drawn latency — the TSO analog of injecting a
// sleep: the store's visibility is delayed, the thread's timing is not.
// The pending extra is consumed (and cleared) by that next store; without
// a TSO heap it is a no-op.
func AddFlushDelay(t *sim.Thread, d sim.Duration) {
	if d <= 0 {
		return
	}
	if cur, ok := t.TLS(flushDelayKey).(sim.Duration); ok && cur > 0 {
		d += cur
	}
	t.SetTLS(flushDelayKey, d)
}

// takeFlushDelay consumes the thread's pending flush extra.
func takeFlushDelay(t *sim.Thread) sim.Duration {
	if cur, ok := t.TLS(flushDelayKey).(sim.Duration); ok && cur > 0 {
		t.SetTLS(flushDelayKey, sim.Duration(0))
		return cur
	}
	return 0
}

// buffer enqueues a state transition in t's store buffer. A store whose
// deadline is not in the future (zero-latency config, no flush extra)
// applies immediately — the degenerate buffer that makes TSO-with-zero-
// latency bit-identical to sequential consistency.
func (r *Ref) buffer(t *sim.Thread, site trace.SiteID, kind trace.Kind, st State) {
	ts := r.heap.tso
	lat := ts.cfg.FlushMin
	if span := int64(ts.cfg.FlushMax - ts.cfg.FlushMin); span > 0 {
		lat += sim.Duration(ts.rng.Int63n(span + 1))
	}
	now := t.Now()
	vis := now.Add(lat + takeFlushDelay(t))
	if lv := ts.lastVisible[t.ID()]; vis < lv {
		vis = lv // FIFO: never drain ahead of an earlier store
	}
	if vis <= now {
		r.state = st
		return
	}
	ts.lastVisible[t.ID()] = vis
	r.pending = append(r.pending, pendingStore{
		state: st, tid: t.ID(), site: site, kind: kind, at: now, visibleAt: vis,
	})
}

// commitMature applies every buffered store whose deadline has passed, in
// deadline order (ties break by issue order). Called lazily at each
// access, so shared memory is always up to date before a state is read.
func (r *Ref) commitMature(now sim.Time) {
	for len(r.pending) > 0 {
		best := -1
		for i := range r.pending {
			if r.pending[i].visibleAt > now {
				continue
			}
			if best < 0 || r.pending[i].visibleAt < r.pending[best].visibleAt {
				best = i
			}
		}
		if best < 0 {
			return
		}
		r.state = r.pending[best].state
		r.pending = append(r.pending[:best], r.pending[best+1:]...)
	}
}

// observed returns the state thread tid reads: its own newest buffered
// store when one exists (store-to-load forwarding), else shared memory.
func (r *Ref) observed(tid int) State {
	st := r.state
	for _, ps := range r.pending {
		if ps.tid == tid {
			st = ps.state
		}
	}
	return st
}

// coherent returns the state a fully fenced (store-order-consistent)
// execution would read: shared memory with every buffered store applied in
// issue order.
func (r *Ref) coherent() State {
	st := r.state
	for _, ps := range r.pending {
		st = ps.state
	}
	return st
}

// staleBlame returns the oldest other-thread buffered store — the write a
// fence must flush to make tid's read fresh. Only meaningful when
// observed(tid) diverges from coherent(), which implies such a store
// exists.
func (r *Ref) staleBlame(tid int) *pendingStore {
	for i := range r.pending {
		if r.pending[i].tid != tid {
			return &r.pending[i]
		}
	}
	return nil
}

// UseFresh executes a member access that expects a fence-fresh view: if
// the observed state diverges from the coherent state — another thread's
// Init or Dispose is still buffered — the thread raises a StaleReadError
// naming the buffered store a repair fence must flush. When the view is
// coherent it behaves like UseIfLive (no lifecycle fault), returning
// whether the reference was live. Without TSO mode there is no staleness,
// so it degenerates to UseIfLive exactly.
func (r *Ref) UseFresh(t *sim.Thread, site trace.SiteID) bool {
	r.enter(t, site, trace.KindUse, 0)
	if r.heap.tso == nil {
		return r.state == StateLive
	}
	r.commitMature(t.Now())
	obs := r.observed(t.ID())
	if coh := r.coherent(); obs != coh {
		blame := r.staleBlame(t.ID())
		t.Throw(&StaleReadError{
			Obj: r.id, Name: r.name, Site: site,
			Observed: obs, Coherent: coh,
			PendingSite: blame.site, PendingKind: blame.kind,
			PendingTID: blame.tid, VisibleAt: blame.visibleAt,
		})
	}
	return obs == StateLive
}

// Fence drains thread t's store buffer: every store t issued commits now
// (an mfence/full barrier at t's current point). Mature foreign stores
// commit as a side effect of the lazy drain; immature ones stay buffered.
// A no-op without TSO mode — fenced programs run unchanged under SC.
func (h *Heap) Fence(t *sim.Thread) {
	if h.tso == nil {
		return
	}
	now := t.Now()
	for _, r := range h.refs {
		fenced := false
		for i := range r.pending {
			if r.pending[i].tid == t.ID() {
				r.pending[i].visibleAt = now
				fenced = true
			}
		}
		if fenced || len(r.pending) > 0 {
			r.commitMature(now)
		}
	}
	if lv := h.tso.lastVisible[t.ID()]; lv > now {
		h.tso.lastVisible[t.ID()] = now
	}
}
