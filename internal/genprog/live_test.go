package genprog

import (
	"testing"

	"waffle/internal/live"
	"waffle/internal/sim"
)

// liveConfig shapes a generated program for the wall clock: one bug, no
// API noise (the live heap has no API instrumentation), and gaps wide
// enough that the 0.15·gap exposure margin dwarfs physical scheduling
// jitter.
func liveConfig(seed int64) Config {
	return Config{
		Seed:   seed,
		Bugs:   1,
		GapMin: 30 * sim.Millisecond,
		GapMax: 50 * sim.Millisecond,
		Depth:  1,
	}
}

// A disarmed generated program must survive the full live pipeline — real
// goroutines, physical injected delays, arbitrary OS scheduling — without
// a fault: the structural zero-FP argument is timing-independent.
// live.ExposeT fails the test on any manifestation. Under -race this also
// checks the rendered bodies are data-race-free.
func TestLiveDisarmedGeneratedProgramSurvives(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	p := Generate(liveConfig(31)).DisarmAll()
	live.ExposeT(t, p.LiveBody(), 5)
}

// An armed generated program must expose its planted bug on the wall
// clock. Physical scheduling is nondeterministic, so allow a few runs and
// retry with fresh detectors before declaring failure.
func TestLiveArmedGeneratedProgramExposes(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	p := Generate(liveConfig(32))
	m := p.Manifest()
	armed := p.ArmOnly(0)
	for attempt := 0; attempt < 3; attempt++ {
		d := live.NewDetector(live.Options{})
		out := d.Expose(live.Scenario{Name: p.Name(), Body: armed.LiveBody()}, 6, int64(100+attempt))
		if out.Bug != nil {
			if err := m.Check(out.Bug); err != nil {
				t.Fatalf("attempt %d: %v", attempt, err)
			}
			return
		}
	}
	t.Error("planted bug not exposed in 3 live attempts of 6 runs each")
}
