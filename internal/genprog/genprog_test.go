package genprog

import (
	"bytes"
	"testing"

	"waffle/internal/core"
	"waffle/internal/trace"
	"waffle/internal/wafflebasic"
)

func TestGenerateIsDeterministic(t *testing.T) {
	for _, size := range []Size{SizeSmall, SizeMedium, SizeLarge} {
		cfg := SizeConfig(7, size)
		a, b := Generate(cfg), Generate(cfg)
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("%s: two generations from one config diverge", size)
		}
		if !bytes.Equal(a.Manifest().JSON(), b.Manifest().JSON()) {
			t.Errorf("%s: manifests diverge", size)
		}
	}
	if Generate(Config{Seed: 1}).Fingerprint() == Generate(Config{Seed: 2}).Fingerprint() {
		t.Error("different seeds generated identical programs")
	}
}

func TestManifestShape(t *testing.T) {
	p := Generate(SizeConfig(3, SizeLarge))
	m := p.Manifest()
	if len(m.Bugs) != 3 {
		t.Fatalf("planted %d bugs, want 3", len(m.Bugs))
	}
	for _, b := range m.Bugs {
		if b.Gap < p.Config().GapMin || b.Gap > p.Config().GapMax {
			t.Errorf("bug %d gap %v outside [%v, %v]", b.Index, b.Gap, p.Config().GapMin, p.Config().GapMax)
		}
		if got, ok := m.Allows(b.Obj, b.FaultSite); !ok || got.Index != b.Index {
			t.Errorf("bug %d not allowed by its own manifest", b.Index)
		}
		if _, ok := m.Allows(b.Obj, trace.SiteID("nowhere")); ok {
			t.Errorf("bug %d object allowed at an unplanted site", b.Index)
		}
	}
}

// An unperturbed (hook-free) run must never fault, even fully armed: the
// planted orders hold whenever nothing delays the racy accesses.
func TestUnperturbedArmedRunIsClean(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		p := Generate(SizeConfig(seed, Size(seed%3))).ArmAll()
		res := p.Prog().Execute(seed, nil)
		if res.Fault != nil {
			t.Errorf("seed %d: unperturbed run faulted: %v", seed, res.Fault.Err)
		}
		if res.Err != nil || res.TimedOut {
			t.Errorf("seed %d: abnormal termination: err=%v timedOut=%v", seed, res.Err, res.TimedOut)
		}
	}
}

// The trace — and so the plan — must not depend on the arming mask:
// guarded and faulting probes record the same KindUse event.
func TestTraceIsArmingInvariant(t *testing.T) {
	p := Generate(SizeConfig(11, SizeMedium))
	encode := func(v *Program) []byte {
		t.Helper()
		wf := core.NewWaffle(core.Options{})
		wf.SetLabel(v.Name())
		hook := wf.HookForRun(1, nil)
		res := v.Prog().Execute(41, hook)
		if res.Fault != nil || res.Err != nil {
			t.Fatalf("prep run: fault=%v err=%v", res.Fault, res.Err)
		}
		wf.FinishPreparation(&core.RunReport{Run: 1, End: res.End})
		var buf bytes.Buffer
		if err := wf.PrepTrace().WriteBinary(&buf); err != nil {
			t.Fatalf("encode trace: %v", err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(encode(p.ArmAll()), encode(p.DisarmAll())) {
		t.Error("armed and disarmed preparation traces differ")
	}
}

// Waffle must expose each planted bug — armed in isolation — in the
// second run: the preparation trace pins the gap exactly, the planted
// pair survives fork-clock pruning while every fork decoy is pruned, and
// the α·gap delay at probability 1 inverts the order deterministically.
func TestWaffleExposesEveryPlantedBug(t *testing.T) {
	for seed := int64(20); seed < 24; seed++ {
		p := Generate(SizeConfig(seed, SizeLarge))
		m := p.Manifest()
		for i, want := range m.Bugs {
			s := &core.Session{
				Prog:     p.ArmOnly(i).Prog(),
				Tool:     core.NewWaffle(core.Options{}),
				MaxRuns:  core.DefaultMaxRuns,
				BaseSeed: seed*100 + int64(i),
			}
			out := s.Expose()
			if out.Bug == nil {
				t.Fatalf("seed %d bug %d: not exposed in %d runs", seed, i, len(out.Runs))
			}
			if err := m.Check(out.Bug); err != nil {
				t.Errorf("seed %d bug %d: %v", seed, i, err)
			}
			if out.Bug.NullRef.Name != want.Obj || out.Bug.NullRef.Site != want.FaultSite {
				t.Errorf("seed %d bug %d: exposed %s at %s, want %s at %s",
					seed, i, out.Bug.NullRef.Name, out.Bug.NullRef.Site, want.Obj, want.FaultSite)
			}
			if out.Bug.Run != 2 {
				t.Errorf("seed %d bug %d: exposed in run %d, want 2", seed, i, out.Bug.Run)
			}
		}
	}
}

// Disarmed programs are the zero-FP control: no tool's delay schedule may
// fault them, whatever it perturbs.
func TestDisarmedSurvivesDetection(t *testing.T) {
	p := Generate(SizeConfig(5, SizeMedium)).DisarmAll()
	tools := []core.Tool{
		core.NewWaffle(core.Options{}),
		wafflebasic.New(core.Options{}),
	}
	for _, tool := range tools {
		s := &core.Session{Prog: p.Prog(), Tool: tool, MaxRuns: 15, BaseSeed: 501}
		out := s.Expose()
		if out.Bug != nil {
			t.Errorf("%s: disarmed program reported a bug: %v", tool.Name(), out.Bug)
		}
		for _, err := range out.RunErrs() {
			t.Errorf("%s: %v", tool.Name(), err)
		}
		for _, r := range out.Runs {
			if r.TimedOut {
				t.Errorf("%s: run %d timed out", tool.Name(), r.Run)
			}
		}
	}
}
