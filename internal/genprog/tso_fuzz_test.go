package genprog

import (
	"testing"

	"waffle/internal/core"
	"waffle/internal/sim"
)

// FuzzTSOGenerate is FuzzGenerate's weak-memory twin: over the TSO
// layout's config space it asserts that generation stays deterministic,
// that every planted bug is a StaleRead whose manifest carries the
// ground-truth fence pair (DelaySite/FaultSite), and that an armed,
// unperturbed program never faults — natural flush latency tops out at
// 200µs while the planted read gap is at least a millisecond, so only an
// injected visibility delay may expose the probe. A faulting
// seed/config combination would poison the differential oracle exactly
// like an SC one would.
//
// CI runs this briefly (`go test -fuzz=FuzzTSOGenerate -fuzztime=10s`);
// the seed corpus covers every preset size plus degenerate decoy knobs.
func FuzzTSOGenerate(f *testing.F) {
	f.Add(int64(1), uint8(1), uint8(2), uint8(1), uint16(2), uint16(60), uint8(1))
	f.Add(int64(2), uint8(2), uint8(3), uint8(2), uint16(5), uint16(40), uint8(2))
	f.Add(int64(3), uint8(3), uint8(5), uint8(3), uint16(2), uint16(90), uint8(3))
	f.Add(int64(99), uint8(4), uint8(0), uint8(0), uint16(1), uint16(1), uint8(1))
	f.Add(int64(-7), uint8(1), uint8(1), uint8(0), uint16(150), uint16(400), uint8(4))

	f.Fuzz(func(t *testing.T, seed int64, bugs, decoys, hb uint8, gapMinMs, gapMaxMs uint16, depth uint8) {
		cfg := Config{
			Seed:            seed,
			TSO:             true,
			Bugs:            int(bugs%4) + 1,
			DecoysPerThread: int(decoys % 8),
			HBDecoys:        int(hb % 5),
			JoinDecoys:      -1,
			APINoise:        -1,
			GapMin:          sim.Duration(gapMinMs%500+1) * sim.Millisecond,
			GapMax:          sim.Duration(gapMaxMs%500) * sim.Millisecond,
			Depth:           int(depth%4) + 1,
		}
		p := Generate(cfg)
		if p.Fingerprint() != Generate(cfg).Fingerprint() {
			t.Fatal("generation is not deterministic")
		}

		for _, b := range p.Bugs() {
			if b.Kind != core.StaleRead {
				t.Fatalf("bug %d kind = %v, want StaleRead", b.Index, b.Kind)
			}
			if b.FenceAfter == "" || b.FenceAfter != b.DelaySite {
				t.Fatalf("bug %d fence_after = %q, want delay site %q", b.Index, b.FenceAfter, b.DelaySite)
			}
			if b.FenceBefore == "" || b.FenceBefore != b.FaultSite {
				t.Fatalf("bug %d fence_before = %q, want fault site %q", b.Index, b.FenceBefore, b.FaultSite)
			}
		}

		armed := p.ArmAll()
		if res := armed.Prog().Execute(seed, nil); res.Fault != nil || res.Err != nil || res.TimedOut {
			t.Fatalf("unperturbed armed run abnormal: fault=%v err=%v timedOut=%v",
				res.Fault, res.Err, res.TimedOut)
		}

		// The delay-free preparation run adds per-access instrumentation
		// cost; the flush deadlines and absolute-time positioning must
		// absorb it without a natural stale read.
		wf := core.NewWaffle(core.Options{TSO: true})
		hook := wf.HookForRun(1, nil)
		if res := armed.Prog().Execute(seed+1, hook); res.Fault != nil || res.Err != nil || res.TimedOut {
			t.Fatalf("instrumented preparation run abnormal: fault=%v err=%v timedOut=%v",
				res.Fault, res.Err, res.TimedOut)
		}
	})
}
