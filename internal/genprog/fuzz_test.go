package genprog

import (
	"testing"

	"waffle/internal/core"
	"waffle/internal/sim"
)

// FuzzGenerate fuzzes the generator's config space, asserting the two
// properties every consumer relies on: generation is deterministic, and
// an unperturbed program — fully armed, with or without preparation-run
// instrumentation — never faults. A seed/config combination that faults
// without injected delays would poison the differential oracle's ground
// truth (the planted order must hold until a delay inverts it).
//
// CI runs this briefly (`go test -fuzz=FuzzGenerate -fuzztime=10s`); the
// seed corpus alone covers every preset size and the degenerate knobs.
func FuzzGenerate(f *testing.F) {
	f.Add(int64(1), uint8(1), uint8(2), uint8(1), uint8(1), uint8(0), uint16(2), uint16(60), uint8(1))
	f.Add(int64(2), uint8(2), uint8(3), uint8(2), uint8(1), uint8(2), uint16(5), uint16(40), uint8(2))
	f.Add(int64(3), uint8(3), uint8(5), uint8(3), uint8(2), uint8(3), uint16(2), uint16(90), uint8(3))
	f.Add(int64(99), uint8(4), uint8(0), uint8(0), uint8(0), uint8(1), uint16(1), uint16(1), uint8(1))
	f.Add(int64(-7), uint8(1), uint8(1), uint8(0), uint8(2), uint8(0), uint16(150), uint16(400), uint8(4))

	f.Fuzz(func(t *testing.T, seed int64, bugs, decoys, hb, jd, api uint8, gapMinMs, gapMaxMs uint16, depth uint8) {
		cfg := Config{
			Seed:            seed,
			Bugs:            int(bugs%4) + 1,
			DecoysPerThread: int(decoys % 8),
			HBDecoys:        int(hb % 5),
			JoinDecoys:      int(jd % 4),
			APINoise:        int(api % 4),
			GapMin:          sim.Duration(gapMinMs%500+1) * sim.Millisecond,
			GapMax:          sim.Duration(gapMaxMs%500) * sim.Millisecond,
			Depth:           int(depth%4) + 1,
		}
		p := Generate(cfg)
		if p.Fingerprint() != Generate(cfg).Fingerprint() {
			t.Fatal("generation is not deterministic")
		}

		armed := p.ArmAll()
		if res := armed.Prog().Execute(seed, nil); res.Fault != nil || res.Err != nil || res.TimedOut {
			t.Fatalf("unperturbed armed run abnormal: fault=%v err=%v timedOut=%v",
				res.Fault, res.Err, res.TimedOut)
		}

		// The delay-free preparation run adds per-access instrumentation
		// cost; absolute-time positioning must absorb it.
		wf := core.NewWaffle(core.Options{})
		hook := wf.HookForRun(1, nil)
		if res := armed.Prog().Execute(seed+1, hook); res.Fault != nil || res.Err != nil || res.TimedOut {
			t.Fatalf("instrumented preparation run abnormal: fault=%v err=%v timedOut=%v",
				res.Fault, res.Err, res.TimedOut)
		}
	})
}
