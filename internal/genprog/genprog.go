// Package genprog is a deterministic, seed-driven generator of synthetic
// programs with planted MemOrder bugs and a machine-readable ground-truth
// manifest — unbounded test input for the detection pipeline beyond the
// hand-written scenario catalog.
//
// Every generated program is a spawn tree over the sim runtime: a root
// thread forks one subtree per planted bug (optionally through relay
// threads, so racy threads sit at varying depths) plus optional
// API-noise threads for the TSVD baseline. Each bug subtree has a spawner
// thread that initializes the subtree's shared objects, then forks two
// sibling threads which perform the racy access pair at a randomized gap.
// Around the racy pair the generator plants decoys:
//
//   - private decoys: accesses to thread-local objects — never candidates
//     for any detector (same thread);
//   - fork decoys: objects initialized by the spawner before the fork and
//     used by a child — genuinely happens-before ordered, so Waffle's
//     fork-clock pruning removes them while WaffleBasic admits them and
//     wastes delays on them (§4.1's pruning story);
//   - join decoys: objects used by a child and disposed by the spawner
//     after joining it — ordered through the join, which fork clocks do
//     not track, so *both* analyzers admit them; delaying their use also
//     postpones the join and the dispose, so they can never fault.
//
// Structural zero-false-positive guarantee: every access outside the
// planted racy pairs is either thread-local or chained behind its
// object's initialization by program order or a fork edge, and every
// dispose executes exactly once on a live object. Arbitrary delays at
// arbitrary sites can therefore manifest a NullRefError only at a planted
// bug's fault site — the property the differential oracle asserts and
// FuzzGenerate fuzzes.
//
// All randomness comes from one rand.Source seeded with Config.Seed; two
// Generate calls with equal Configs yield byte-identical programs (see
// Fingerprint).
package genprog

import (
	"fmt"
	"math/rand"
	"sort"

	"waffle/internal/core"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// Config parameterizes one generated program. The zero value (plus a
// seed) is a valid mid-sized configuration; negative knobs mean zero.
type Config struct {
	// Seed drives every random choice. Equal Configs generate
	// byte-identical programs.
	Seed int64
	// Bugs is the number of planted racy pairs, each in its own subtree.
	// <= 0 means 1.
	Bugs int
	// DecoysPerThread is the number of private (thread-local) decoy uses
	// planted in each racy thread. < 0 means 0; 0 means the default 3.
	DecoysPerThread int
	// HBDecoys is the number of fork-ordered decoy objects per bug.
	// < 0 means 0; 0 means the default 2.
	HBDecoys int
	// JoinDecoys is the number of join-ordered decoy objects per bug.
	// < 0 means 0; 0 means the default 1.
	JoinDecoys int
	// APINoise is the number of threads performing thread-unsafe API
	// calls on one shared noise object (TSVD's instrumentation domain).
	// <= 0 means none.
	APINoise int
	// GapMin and GapMax bound the planted racy gap. Defaults: 2ms, 60ms.
	// Gaps must stay under the analysis window (100ms) for the pair to be
	// a candidate at all.
	GapMin, GapMax sim.Duration
	// Depth is the maximum number of spawn levels between the root and a
	// bug's spawner thread (1 = root spawns the spawner directly).
	// <= 0 means 2.
	Depth int
	// TSO plants stale-read bugs instead of order violations: programs run
	// under store-buffer semantics (the rendered SimProgram enables
	// memmodel TSO mode) and every racy pair is a fork-ordered write→read
	// whose exposure requires delaying the write's *visibility*. Manifests
	// carry the expected fence-repair pair. JoinDecoys and APINoise are
	// ignored in TSO layouts.
	TSO bool
	// Name labels the program in reports. Empty means "gen-s<Seed>".
	Name string
}

func (c Config) withDefaults() Config {
	if c.Bugs <= 0 {
		c.Bugs = 1
	}
	switch {
	case c.DecoysPerThread < 0:
		c.DecoysPerThread = 0
	case c.DecoysPerThread == 0:
		c.DecoysPerThread = 3
	case c.DecoysPerThread > 5:
		c.DecoysPerThread = 5
	}
	switch {
	case c.HBDecoys < 0:
		c.HBDecoys = 0
	case c.HBDecoys == 0:
		c.HBDecoys = 2
	case c.HBDecoys > 3:
		c.HBDecoys = 3
	}
	switch {
	case c.JoinDecoys < 0:
		c.JoinDecoys = 0
	case c.JoinDecoys == 0:
		c.JoinDecoys = 1
	case c.JoinDecoys > 2:
		c.JoinDecoys = 2
	}
	if c.APINoise < 0 {
		c.APINoise = 0
	}
	if c.GapMin <= 0 {
		c.GapMin = 2 * sim.Millisecond
	}
	if c.GapMax < c.GapMin {
		c.GapMax = 60 * sim.Millisecond
	}
	if c.GapMax < c.GapMin {
		c.GapMax = c.GapMin
	}
	if c.Depth <= 0 {
		c.Depth = 2
	}
	if c.Name == "" {
		c.Name = fmt.Sprintf("gen-s%d", c.Seed)
	}
	return c
}

// Size selects a preset scale for SizeConfig.
type Size int

const (
	// SizeSmall is one bug with light decoy cover and no API noise.
	SizeSmall Size = iota
	// SizeMedium is two bugs with medium decoy cover and two API-noise
	// threads.
	SizeMedium
	// SizeLarge is three bugs with heavy decoy cover and three API-noise
	// threads.
	SizeLarge
)

func (s Size) String() string {
	switch s {
	case SizeSmall:
		return "small"
	case SizeMedium:
		return "medium"
	case SizeLarge:
		return "large"
	}
	return fmt.Sprintf("size(%d)", int(s))
}

// SizeConfig returns the preset Config for a seed at a given scale.
func SizeConfig(seed int64, s Size) Config {
	c := Config{Seed: seed, Name: fmt.Sprintf("gen-%s-s%d", s, seed)}
	switch s {
	case SizeLarge:
		c.Bugs, c.DecoysPerThread, c.HBDecoys, c.JoinDecoys, c.APINoise = 3, 5, 3, 2, 3
	case SizeMedium:
		c.Bugs, c.DecoysPerThread, c.HBDecoys, c.JoinDecoys, c.APINoise = 2, 3, 2, 1, 2
	default:
		c.Bugs, c.DecoysPerThread, c.HBDecoys, c.JoinDecoys, c.APINoise = 1, 2, 1, 1, 0
	}
	return c
}

// TSOSizeConfig returns the preset TSO-corpus Config for a seed at a given
// scale: stale-read bugs with fence decoys (fork-ordered write→guarded-read
// pairs that are StaleRead candidates but can never fault) in place of the
// SC decoy mix.
func TSOSizeConfig(seed int64, s Size) Config {
	c := Config{Seed: seed, TSO: true, Name: fmt.Sprintf("gen-tso-%s-s%d", s, seed)}
	switch s {
	case SizeLarge:
		c.Bugs, c.DecoysPerThread, c.HBDecoys = 3, 5, 3
	case SizeMedium:
		c.Bugs, c.DecoysPerThread, c.HBDecoys = 2, 3, 2
	default:
		c.Bugs, c.DecoysPerThread, c.HBDecoys = 1, 2, 1
	}
	return c
}

// opCode is one instrumented action in the generated script.
type opCode uint8

const (
	opInit opCode = iota
	opUse
	opDispose
	opAPIRead
	opAPIWrite
	// opUseGuard always renders as UseIfLive regardless of arming: a read
	// that tolerates both absent and stale state. TSO layouts use it for
	// fence-decoy reads, which may genuinely observe a buffered (stale)
	// store when the injector delays the decoy write's visibility.
	opUseGuard
)

func (c opCode) String() string {
	switch c {
	case opInit:
		return "init"
	case opUse:
		return "use"
	case opDispose:
		return "dispose"
	case opAPIRead:
		return "apiread"
	case opAPIWrite:
		return "apiwrite"
	case opUseGuard:
		return "useguard"
	}
	return "?"
}

// op is one scheduled access. At is an absolute virtual time: the thread
// sleeps until At before performing the access, which makes planted gaps
// independent of instrumentation overhead accumulated earlier in the
// thread (each access self-corrects its position). At < 0 means
// "immediately", used for post-join epilogue ops.
type op struct {
	Code opCode
	At   sim.Time
	Obj  int // index into Program.objs
	Site trace.SiteID
	Dur  sim.Duration // API-call window length
	Bug  int          // planted-bug index when this op is the guarded probe; -1 otherwise
}

// threadSpec is one node of the spawn tree. Execution order: Pre ops
// (timed), spawn Children, Ops (timed), join Children, Post ops
// (immediate). Pre runs before the forks so Pre initializations are in
// every child's fork clock; Post runs after the joins so Post disposes
// are really ordered after child uses.
type threadSpec struct {
	Name     string
	Children []int
	Pre      []op
	Ops      []op
	Post     []op
}

// Program is one generated program. It is immutable after Generate except
// for the arming mask, which ArmOnly/ArmAll/DisarmAll replace wholesale
// on shallow copies — variants of the same Program share the script and
// can execute concurrently.
type Program struct {
	cfg     Config
	threads []threadSpec
	objs    []string // object names, index = op.Obj
	bugs    []PlantedBug
	armed   []bool
	// fenceAfter, when set on a variant (WithFence), drains the acting
	// thread's store buffer immediately after every access at that site.
	fenceAfter trace.SiteID
	lastAt     sim.Time // latest scheduled op time
}

// band spacing keeps bug subtrees far enough apart that no cross-subtree
// access pair can fall inside the 100ms analysis window even after
// worst-case decoy delays, and lead is how long before its racy instant a
// subtree's spawner starts initializing shared objects.
const (
	firstBandAt = 60 * sim.Millisecond
	bandSpacing = 250 * sim.Millisecond
	spawnerLead = 36 * sim.Millisecond
)

// Generate builds the program for cfg. The same cfg always yields the
// same program, byte for byte.
func Generate(cfg Config) *Program {
	cfg = cfg.withDefaults()
	g := &gen{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		p:   &Program{cfg: cfg},
	}
	g.addThread("main") // index 0

	for b := 0; b < cfg.Bugs; b++ {
		if cfg.TSO {
			g.plantTSOBug(b)
		} else {
			g.plantBug(b)
		}
	}
	if !cfg.TSO {
		g.apiNoise()
	}

	// Randomize the root's spawn order: thread IDs (and so tie-breaking
	// and fork-clock component order) vary across seeds without touching
	// any happens-before relation.
	root := &g.p.threads[0]
	g.rng.Shuffle(len(root.Children), func(i, j int) {
		root.Children[i], root.Children[j] = root.Children[j], root.Children[i]
	})

	// Threads execute their op lists in order; emission order interleaves
	// concerns (decoy traffic, the racy pair, trailing uses), so sort by
	// scheduled time. Within a thread all times are distinct, keeping the
	// order — and the generated program — fully deterministic.
	for i := range g.p.threads {
		t := &g.p.threads[i]
		sort.SliceStable(t.Pre, func(a, b int) bool { return t.Pre[a].At < t.Pre[b].At })
		sort.SliceStable(t.Ops, func(a, b int) bool { return t.Ops[a].At < t.Ops[b].At })
	}

	g.p.armed = make([]bool, len(g.p.bugs))
	return g.p
}

type gen struct {
	cfg Config
	rng *rand.Rand
	p   *Program
}

func (g *gen) addThread(name string) int {
	g.p.threads = append(g.p.threads, threadSpec{Name: name})
	return len(g.p.threads) - 1
}

func (g *gen) addObj(name string) int {
	g.p.objs = append(g.p.objs, name)
	return len(g.p.objs) - 1
}

func (g *gen) note(at sim.Time) sim.Time {
	if at > g.p.lastAt {
		g.p.lastAt = at
	}
	return at
}

// plantBug emits bug b's subtree: [relay →] spawner → {left, right}.
// The racy pair is left@At vs right@At+Gap:
//
//	use-before-init: left inits the object, right uses it (the probe);
//	use-after-free:  left uses it (the probe), right disposes it, with
//	                 the initialization fork-ordered in the spawner.
//
// In both kinds the delay site of the resulting candidate pair is left's
// access and the fault site is the probe's site.
func (g *gen) plantBug(b int) {
	cfg := g.cfg
	at := sim.Time(firstBandAt + sim.Duration(b)*bandSpacing +
		sim.Duration(g.rng.Int63n(10))*sim.Millisecond)
	gapSteps := int64(cfg.GapMax-cfg.GapMin)/int64(100*sim.Microsecond) + 1
	gap := cfg.GapMin + sim.Duration(g.rng.Int63n(gapSteps))*100*sim.Microsecond
	uaf := g.rng.Intn(2) == 1

	pfx := fmt.Sprintf("b%d", b)
	spawner := g.addThread(pfx + ".spawn")
	left := g.addThread(pfx + ".left")
	right := g.addThread(pfx + ".right")
	g.p.threads[spawner].Children = []int{left, right}

	// Vary the racy pair's depth: optionally interpose relay threads
	// between the root and the spawner.
	top := spawner
	for d := 1 + g.rng.Intn(cfg.Depth); d > 1; d-- {
		relay := g.addThread(fmt.Sprintf("%s.relay%d", pfx, d-1))
		g.p.threads[relay].Children = []int{top}
		top = relay
	}
	root := &g.p.threads[0]
	root.Children = append(root.Children, top)

	obj := g.addObj(pfx + ".obj")
	kind := core.UseBeforeInit
	if uaf {
		kind = core.UseAfterFree
	}

	// Spawner preamble: shared-object initializations, 2ms apart,
	// finishing well before the children's first scheduled access. Each
	// init precedes the forks in program order, so it is in both
	// children's fork clocks: Waffle prunes any pair it forms, while
	// WaffleBasic admits pairs within its window — decoy candidates whose
	// delays shift the forks (and the whole subtree) together, never
	// reordering an access before an initialization.
	preAt := at.Add(-spawnerLead)
	pre := func(code opCode, o int, site string) {
		sp := &g.p.threads[spawner]
		sp.Pre = append(sp.Pre, op{Code: code, At: g.note(preAt), Obj: o, Site: trace.SiteID(site), Bug: -1})
		preAt = preAt.Add(2 * sim.Millisecond)
	}
	if uaf {
		pre(opInit, obj, pfx+".obj.init")
	}
	hb := make([]int, cfg.HBDecoys)
	for j := range hb {
		hb[j] = g.addObj(fmt.Sprintf("%s.hb%d", pfx, j))
		pre(opInit, hb[j], fmt.Sprintf("%s.hb%d.init", pfx, j))
	}
	jd := make([]int, cfg.JoinDecoys)
	for j := range jd {
		jd[j] = g.addObj(fmt.Sprintf("%s.jd%d", pfx, j))
		pre(opInit, jd[j], fmt.Sprintf("%s.jd%d.init", pfx, j))
	}

	// Private decoy traffic: one thread-local object per racy thread,
	// initialized and used only there. Same-thread accesses never form
	// candidates for any detector; they pad the trace and the site space.
	g.privateDecoys(left, pfx+".pa", at.Add(-22*sim.Millisecond), 3*sim.Millisecond, at.Add(gap+6*sim.Millisecond))
	g.privateDecoys(right, pfx+".pb", at.Add(-21*sim.Millisecond), 2*sim.Millisecond, 0)

	// Fork-decoy uses in the right (target) thread, within the window of
	// their spawner-side inits.
	rt := &g.p.threads[right]
	for j, o := range hb {
		useAt := at.Add(sim.Duration(-9+2*j) * sim.Millisecond)
		rt.Ops = append(rt.Ops, op{Code: opUse, At: g.note(useAt), Obj: o,
			Site: trace.SiteID(fmt.Sprintf("%s.hb%d.use", pfx, j)), Bug: -1})
	}

	// The racy pair itself. The probe (the access that faults when the
	// delay wins the race) renders as Use when the bug is armed and
	// UseIfLive when not; both record an identical KindUse event, so the
	// trace — and every plan derived from it — is arming-invariant.
	lt := &g.p.threads[left]
	delaySite := trace.SiteID(pfx + ".obj.init")
	targetSite := trace.SiteID(pfx + ".obj.use")
	faultSite := targetSite
	if uaf {
		delaySite = trace.SiteID(pfx + ".obj.use")
		targetSite = trace.SiteID(pfx + ".obj.dispose")
		faultSite = delaySite
		lt.Ops = append(lt.Ops, op{Code: opUse, At: g.note(at), Obj: obj, Site: delaySite, Bug: b})
		rt.Ops = append(rt.Ops, op{Code: opDispose, At: g.note(at.Add(gap)), Obj: obj, Site: targetSite, Bug: -1})
	} else {
		lt.Ops = append(lt.Ops, op{Code: opInit, At: g.note(at), Obj: obj, Site: delaySite, Bug: -1})
		rt.Ops = append(rt.Ops, op{Code: opUse, At: g.note(at.Add(gap)), Obj: obj, Site: targetSite, Bug: b})
	}

	// Join-decoy uses after the racy access (so delays at their sites
	// cannot shift it), disposed by the spawner only after joining both
	// children.
	sp := &g.p.threads[spawner]
	for j, o := range jd {
		useAt := at.Add(gap + sim.Duration(3+3*j)*sim.Millisecond)
		rt.Ops = append(rt.Ops, op{Code: opUse, At: g.note(useAt), Obj: o,
			Site: trace.SiteID(fmt.Sprintf("%s.jd%d.use", pfx, j)), Bug: -1})
		sp.Post = append(sp.Post, op{Code: opDispose, At: -1, Obj: o,
			Site: trace.SiteID(fmt.Sprintf("%s.jd%d.dispose", pfx, j)), Bug: -1})
	}

	g.p.bugs = append(g.p.bugs, PlantedBug{
		Index:       b,
		Kind:        kind,
		Obj:         g.p.objs[obj],
		DelaySite:   delaySite,
		TargetSite:  targetSite,
		FaultSite:   faultSite,
		Gap:         gap,
		At:          at,
		DelayThread: g.p.threads[left].Name,
		FaultThread: g.p.threads[left].Name,
	})
	if !uaf {
		g.p.bugs[b].FaultThread = g.p.threads[right].Name
	}
}

// TSO banding. Stale-read subtrees sit on a wider grid because the
// dispose flavor plants its initialization tsoEarlyInitLead before the
// racy instant: far enough that the (init, probe) distance exceeds the
// 100ms analysis window, so the dispose alone is blamed for the stale
// read, yet still inside the band.
const (
	tsoFirstBandAt   = 220 * sim.Millisecond
	tsoBandSpacing   = 400 * sim.Millisecond
	tsoEarlyInitLead = 150 * sim.Millisecond
)

// plantTSOBug emits bug b's subtree for a TSO layout: [relay →] writer →
// reader. The writer performs the racy write — an Init, or a Dispose of
// an object initialized tsoEarlyInitLead earlier — in its preamble and
// only then forks the reader, so the pair is fork-clock ORDERED and can
// never invert under sequential consistency: no thread delay exposes it.
// Exposure requires delaying the write's *visibility*: the injector's
// flush delay keeps the store in the writer's buffer past the reader's
// probe, which then observes the stale pre-write state. The probe
// renders as UseFresh when armed (faults iff stale) and UseIfLive when
// not; both record KindUse, keeping traces arming-invariant.
//
// Around the pair:
//
//   - fence decoys: hb objects initialized in the writer's preamble and
//     read by the reader through guarded reads placed after the probe —
//     more ordered write→read StaleRead candidates that soak up flush
//     delays but are structurally unable to fault;
//   - private decoys: thread-local reader traffic squeezed between the
//     fork and the probe (sub-2ms spacing fits under the minimum gap).
func (g *gen) plantTSOBug(b int) {
	cfg := g.cfg
	at := sim.Time(tsoFirstBandAt + sim.Duration(b)*tsoBandSpacing +
		sim.Duration(g.rng.Int63n(10))*sim.Millisecond)
	gapSteps := int64(cfg.GapMax-cfg.GapMin)/int64(100*sim.Microsecond) + 1
	gap := cfg.GapMin + sim.Duration(g.rng.Int63n(gapSteps))*100*sim.Microsecond
	disposeFlavor := g.rng.Intn(2) == 1

	pfx := fmt.Sprintf("b%d", b)
	writer := g.addThread(pfx + ".writer")
	reader := g.addThread(pfx + ".reader")
	g.p.threads[writer].Children = []int{reader}

	top := writer
	for d := 1 + g.rng.Intn(cfg.Depth); d > 1; d-- {
		relay := g.addThread(fmt.Sprintf("%s.relay%d", pfx, d-1))
		g.p.threads[relay].Children = []int{top}
		top = relay
	}
	root := &g.p.threads[0]
	root.Children = append(root.Children, top)

	obj := g.addObj(pfx + ".obj")
	wt := &g.p.threads[writer]

	// Fence-decoy initializations, 2ms apart, ending just before the racy
	// write. Their guarded reads land after the probe, still within the
	// analysis window of these inits.
	hb := make([]int, cfg.HBDecoys)
	preAt := at.Add(-2 * sim.Duration(cfg.HBDecoys) * sim.Millisecond)
	for j := range hb {
		hb[j] = g.addObj(fmt.Sprintf("%s.hb%d", pfx, j))
		wt.Pre = append(wt.Pre, op{Code: opInit, At: g.note(preAt), Obj: hb[j],
			Site: trace.SiteID(fmt.Sprintf("%s.hb%d.init", pfx, j)), Bug: -1})
		preAt = preAt.Add(2 * sim.Millisecond)
	}

	// The racy write.
	delaySite := trace.SiteID(pfx + ".obj.init")
	if disposeFlavor {
		wt.Pre = append(wt.Pre, op{Code: opInit, At: g.note(at.Add(-tsoEarlyInitLead)),
			Obj: obj, Site: delaySite, Bug: -1})
		delaySite = trace.SiteID(pfx + ".obj.dispose")
		wt.Pre = append(wt.Pre, op{Code: opDispose, At: g.note(at), Obj: obj, Site: delaySite, Bug: -1})
	} else {
		wt.Pre = append(wt.Pre, op{Code: opInit, At: g.note(at), Obj: obj, Site: delaySite, Bug: -1})
	}

	// Reader: private decoys between fork and probe, the probe at the
	// planted gap, then the fence-decoy reads.
	rt := &g.p.threads[reader]
	pd := g.addObj(pfx + ".pa")
	pdAt := at.Add(130 * sim.Microsecond)
	rt.Ops = append(rt.Ops, op{Code: opInit, At: g.note(pdAt), Obj: pd,
		Site: trace.SiteID(pfx + ".pa.init"), Bug: -1})
	for j := 0; j < cfg.DecoysPerThread; j++ {
		pdAt = pdAt.Add(330 * sim.Microsecond)
		rt.Ops = append(rt.Ops, op{Code: opUse, At: g.note(pdAt), Obj: pd,
			Site: trace.SiteID(fmt.Sprintf("%s.pa.u%d", pfx, j)), Bug: -1})
	}
	readSite := trace.SiteID(pfx + ".obj.read")
	rt.Ops = append(rt.Ops, op{Code: opUse, At: g.note(at.Add(gap)), Obj: obj, Site: readSite, Bug: b})
	for j, o := range hb {
		readAt := at.Add(gap + sim.Duration(1+2*j)*sim.Millisecond)
		rt.Ops = append(rt.Ops, op{Code: opUseGuard, At: g.note(readAt), Obj: o,
			Site: trace.SiteID(fmt.Sprintf("%s.hb%d.read", pfx, j)), Bug: -1})
	}

	g.p.bugs = append(g.p.bugs, PlantedBug{
		Index:       b,
		Kind:        core.StaleRead,
		Obj:         g.p.objs[obj],
		DelaySite:   delaySite,
		TargetSite:  readSite,
		FaultSite:   readSite,
		Gap:         gap,
		At:          at,
		DelayThread: g.p.threads[writer].Name,
		FaultThread: g.p.threads[reader].Name,
		FenceAfter:  delaySite,
		FenceBefore: readSite,
	})
}

// privateDecoys emits a thread-local object with an init and
// cfg.DecoysPerThread uses starting at start, spaced apart; a trailing
// use is added at tail when nonzero.
func (g *gen) privateDecoys(thread int, name string, start sim.Time, space sim.Duration, tail sim.Time) {
	o := g.addObj(name)
	t := &g.p.threads[thread]
	t.Ops = append(t.Ops, op{Code: opInit, At: g.note(start), Obj: o, Site: trace.SiteID(name + ".init"), Bug: -1})
	at := start.Add(2 * sim.Millisecond)
	for j := 0; j < g.cfg.DecoysPerThread; j++ {
		t.Ops = append(t.Ops, op{Code: opUse, At: g.note(at), Obj: o,
			Site: trace.SiteID(fmt.Sprintf("%s.u%d", name, j)), Bug: -1})
		at = at.Add(space)
	}
	if tail > 0 {
		t.Ops = append(t.Ops, op{Code: opUse, At: g.note(tail), Obj: o, Site: trace.SiteID(name + ".tail"), Bug: -1})
	}
}

// apiNoise emits cfg.APINoise root-child threads sharing one object they
// touch only through thread-unsafe API calls — TSVD's instrumentation
// domain, invisible to the MemOrder analyzers (API kinds form no
// near-miss pairs, and the object is never Init/Use/Disposed). Call
// windows are staggered so no two overlap in an undelayed run: TSVs
// manifest only when TSVD's own delays stretch a thread into another's
// window, and TSVs never fault, so the noise cannot violate the zero-FP
// oracle.
func (g *gen) apiNoise() {
	n := g.cfg.APINoise
	if n <= 0 {
		return
	}
	obj := g.addObj("api.obj")
	const calls = 8
	for i := 0; i < n; i++ {
		// addThread may grow g.p.threads; re-index the root (and the new
		// thread) after every call rather than holding a pointer across it.
		th := g.addThread(fmt.Sprintf("api%d", i))
		root := &g.p.threads[0]
		root.Children = append(root.Children, th)
		t := &g.p.threads[th]
		for k := 0; k < calls; k++ {
			at := sim.Time(40*sim.Millisecond +
				sim.Duration(k)*17*sim.Millisecond +
				sim.Duration(i)*5*sim.Millisecond)
			code := opAPIRead
			if (i+k)%2 == 0 {
				code = opAPIWrite
			}
			t.Ops = append(t.Ops, op{Code: code, At: g.note(at), Obj: obj,
				Site: trace.SiteID(fmt.Sprintf("api%d.c%d", i, k)), Dur: 3 * sim.Millisecond, Bug: -1})
		}
	}
}

// Name returns the program's label.
func (p *Program) Name() string { return p.cfg.Name }

// Config returns the (defaulted) generating configuration.
func (p *Program) Config() Config { return p.cfg }

// Bugs returns the planted ground truth.
func (p *Program) Bugs() []PlantedBug { return p.bugs }

// Threads reports the spawn-tree size (root included).
func (p *Program) Threads() int { return len(p.threads) }

// Objects reports the number of shared/decoy objects allocated per run.
func (p *Program) Objects() int { return len(p.objs) }

// arming returns a shallow copy of p with the given mask.
func (p *Program) arming(mask []bool) *Program {
	cp := *p
	cp.armed = mask
	return &cp
}

// ArmOnly returns a variant with only bug i armed: its probe faults when
// the race manifests, every other probe stays guarded. The trace is
// identical across variants, so plans and candidate sets are too.
func (p *Program) ArmOnly(i int) *Program {
	mask := make([]bool, len(p.bugs))
	if i >= 0 && i < len(mask) {
		mask[i] = true
	}
	return p.arming(mask)
}

// ArmAll returns a variant with every probe faulting.
func (p *Program) ArmAll() *Program {
	mask := make([]bool, len(p.bugs))
	for i := range mask {
		mask[i] = true
	}
	return p.arming(mask)
}

// DisarmAll returns a variant with every probe guarded — the zero-FP
// control: no delay schedule whatsoever may fault it.
func (p *Program) DisarmAll() *Program {
	return p.arming(make([]bool, len(p.bugs)))
}

// WithFence returns a variant that executes a store-buffer fence
// immediately after every access at the given site — the repair a
// FenceProposal names. Applying the proposed fence and re-running the
// exposing schedule must not fault: the oracle's repair-verification
// step. No-op outside TSO mode (the fence drains an empty buffer).
func (p *Program) WithFence(after trace.SiteID) *Program {
	cp := *p
	cp.fenceAfter = after
	return &cp
}
