package genprog

import (
	"time"

	"waffle/internal/live"
)

// LiveBody renders the program for the live (real-goroutine, wall-clock)
// runtime: virtual microseconds become physical microseconds, timed ops
// sleep to their absolute offset from the run start, and the guarded
// probes behave exactly as in the simulator. Thread-unsafe API ops are
// skipped — the live heap has no API instrumentation and TSVD is not a
// live tool — so generate live samples with APINoise = 0.
//
// The structural zero-FP argument is timing-independent (it relies only
// on program order, forks, and joins), so a disarmed live program must
// survive any physical schedule and any injected delay without faulting —
// which is what running it under live.ExposeT and -race asserts.
func (p *Program) LiveBody() func(*live.Thread, *live.Heap) {
	return func(root *live.Thread, h *live.Heap) {
		refs := make([]*live.Ref, len(p.objs))
		for i, name := range p.objs {
			refs[i] = h.NewRef(name)
		}
		p.execLive(root, 0, refs)
	}
}

func (p *Program) execLive(t *live.Thread, idx int, refs []*live.Ref) {
	ts := &p.threads[idx]
	for _, o := range ts.Pre {
		p.doLive(t, o, refs)
	}
	kids := make([]*live.Handle, 0, len(ts.Children))
	for _, c := range ts.Children {
		c := c
		kids = append(kids, t.Spawn(p.threads[c].Name, func(ct *live.Thread) {
			p.execLive(ct, c, refs)
		}))
	}
	for _, o := range ts.Ops {
		p.doLive(t, o, refs)
	}
	for _, k := range kids {
		t.Join(k)
	}
	for _, o := range ts.Post {
		p.doLive(t, o, refs)
	}
}

func (p *Program) doLive(t *live.Thread, o op, refs []*live.Ref) {
	if o.At >= 0 {
		at := time.Duration(o.At) * time.Microsecond
		if d := at - t.Elapsed(); d > 0 {
			t.Sleep(d)
		}
	}
	r := refs[o.Obj]
	switch o.Code {
	case opInit:
		r.Init(t, o.Site)
	case opUse:
		if o.Bug >= 0 && !p.armed[o.Bug] {
			r.UseIfLive(t, o.Site)
		} else {
			r.Use(t, o.Site)
		}
	case opDispose:
		r.Dispose(t, o.Site)
	case opAPIRead, opAPIWrite:
		// No live API instrumentation; preserve pacing only.
		if o.Dur > 0 {
			t.Sleep(time.Duration(o.Dur) * time.Microsecond)
		}
	}
}
