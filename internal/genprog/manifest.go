package genprog

import (
	"encoding/json"
	"fmt"

	"waffle/internal/core"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// PlantedBug is one ground-truth entry: a racy access pair the generator
// planted deliberately. A detector's report is correct iff it names a
// planted bug's object and fault site; anything else is a false positive.
type PlantedBug struct {
	Index int          `json:"index"`
	Kind  core.BugKind `json:"-"`
	// KindName is Kind rendered for the JSON manifest.
	KindName string `json:"kind"`
	// Obj is the shared object's name (memmodel.NullRefError.Name on a
	// manifestation).
	Obj string `json:"obj"`
	// DelaySite is where the analysis should inject (the first access of
	// the near-miss pair: the init for use-before-init, the use for
	// use-after-free).
	DelaySite trace.SiteID `json:"delay_site"`
	// TargetSite is the second access of the pair.
	TargetSite trace.SiteID `json:"target_site"`
	// FaultSite is where the NullRefError manifests when the planted
	// order inverts — always the pair's use site.
	FaultSite trace.SiteID `json:"fault_site"`
	// Gap is the planted prep-run distance between the pair's accesses.
	Gap sim.Duration `json:"gap_us"`
	// At is the virtual time of the pair's first access in an undelayed
	// run.
	At sim.Time `json:"at_us"`
	// DelayThread and FaultThread name the threads performing the delayed
	// access and the faulting access.
	DelayThread string `json:"delay_thread"`
	FaultThread string `json:"fault_thread"`
	// FenceAfter and FenceBefore are the expected repair for a stale-read
	// bug: a store-buffer fence after the write at FenceAfter orders its
	// visibility before the read at FenceBefore. Empty for SC bugs.
	FenceAfter  trace.SiteID `json:"fence_after,omitempty"`
	FenceBefore trace.SiteID `json:"fence_before,omitempty"`
}

func (b PlantedBug) String() string {
	return fmt.Sprintf("bug %d: %s on %s (delay %s, fault %s, gap %v)",
		b.Index, b.Kind, b.Obj, b.DelaySite, b.FaultSite, b.Gap)
}

// Manifest is the machine-readable ground truth for one generated
// program: everything an oracle needs to judge a detector's reports.
type Manifest struct {
	Program string       `json:"program"`
	Seed    int64        `json:"seed"`
	Threads int          `json:"threads"`
	Objects int          `json:"objects"`
	Bugs    []PlantedBug `json:"bugs"`
}

// Manifest builds the program's ground-truth manifest.
func (p *Program) Manifest() *Manifest {
	bugs := make([]PlantedBug, len(p.bugs))
	copy(bugs, p.bugs)
	for i := range bugs {
		bugs[i].KindName = bugs[i].Kind.String()
	}
	return &Manifest{
		Program: p.cfg.Name,
		Seed:    p.cfg.Seed,
		Threads: len(p.threads),
		Objects: len(p.objs),
		Bugs:    bugs,
	}
}

// JSON renders the manifest deterministically (struct field order,
// indented).
func (m *Manifest) JSON() []byte {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil { // struct of plain values; cannot fail
		panic(err)
	}
	return append(b, '\n')
}

// Allows reports whether a fault on object objName at site matches a
// planted bug, returning the matching entry. The zero-FP oracle: every
// fault outside this predicate is a generator or detector defect.
func (m *Manifest) Allows(objName string, site trace.SiteID) (PlantedBug, bool) {
	for _, b := range m.Bugs {
		if b.Obj == objName && b.FaultSite == site {
			return b, true
		}
	}
	return PlantedBug{}, false
}

// Check judges a BugReport against the manifest: nil for a correct
// report, an error describing the violation otherwise. For stale-read
// bugs the report must additionally carry the planted fence-repair pair
// — a proposal naming any other site would "fix" the wrong store.
func (m *Manifest) Check(rep *core.BugReport) error {
	if rep == nil || (rep.NullRef == nil && rep.Stale == nil) {
		return fmt.Errorf("genprog: report without a fault")
	}
	b, ok := m.Allows(rep.ObjName(), rep.FaultSite())
	if !ok {
		return fmt.Errorf("genprog: fault outside the manifest: obj %q at %s (%s)",
			rep.ObjName(), rep.FaultSite(), rep.Kind())
	}
	if rep.Kind() != b.Kind {
		return fmt.Errorf("genprog: fault at %s manifested as %s, planted as %s",
			rep.FaultSite(), rep.Kind(), b.Kind)
	}
	if b.Kind == core.StaleRead {
		switch {
		case rep.Fence == nil:
			return fmt.Errorf("genprog: stale-read report at %s without a fence proposal", rep.FaultSite())
		case rep.Fence.After != b.FenceAfter || rep.Fence.Before != b.FenceBefore:
			return fmt.Errorf("genprog: fence proposal (after %s, before %s) does not match planted (after %s, before %s)",
				rep.Fence.After, rep.Fence.Before, b.FenceAfter, b.FenceBefore)
		}
	}
	return nil
}
