package genprog

import (
	"fmt"
	"strings"

	"waffle/internal/core"
	"waffle/internal/memmodel"
	"waffle/internal/sim"
)

// Prog renders the program for the simulator. Each Execute builds a fresh
// heap and ref set; the script itself is shared and read-only, so
// variants and parallel sessions can execute concurrently.
func (p *Program) Prog() *core.SimProgram {
	sp := &core.SimProgram{
		Label:   p.cfg.Name,
		MaxTime: sim.Duration(p.lastAt) + 10*sim.Second,
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			refs := make([]*memmodel.Ref, len(p.objs))
			for i, name := range p.objs {
				refs[i] = h.NewRef(name)
			}
			p.execThread(root, 0, h, refs)
		},
	}
	if p.cfg.TSO {
		// Flush timing derives from the program seed (XORed with the run
		// seed per execution), so equal configs stay byte-reproducible
		// while commit latencies still vary across runs.
		sp.TSO = &memmodel.TSOConfig{Seed: p.cfg.Seed}
	}
	return sp
}

// execThread interprets one threadSpec: timed preamble, forks, timed ops,
// joins, immediate epilogue.
func (p *Program) execThread(t *sim.Thread, idx int, h *memmodel.Heap, refs []*memmodel.Ref) {
	ts := &p.threads[idx]
	for _, o := range ts.Pre {
		p.do(t, h, o, refs)
	}
	kids := make([]*sim.Thread, len(ts.Children))
	for i, c := range ts.Children {
		c := c
		kids[i] = t.Spawn(p.threads[c].Name, func(ct *sim.Thread) {
			p.execThread(ct, c, h, refs)
		})
	}
	for _, o := range ts.Ops {
		p.do(t, h, o, refs)
	}
	for _, k := range kids {
		t.Join(k)
	}
	for _, o := range ts.Post {
		p.do(t, h, o, refs)
	}
}

// do sleeps to the op's absolute time, then performs the access. Sleeping
// to an absolute instant (rather than for a relative amount) makes each
// access self-positioning: instrumentation overhead charged earlier in
// the thread is absorbed by a shorter sleep, so the planted gaps survive
// hook costs unchanged as long as ops are spaced wider than one hook.
func (p *Program) do(t *sim.Thread, h *memmodel.Heap, o op, refs []*memmodel.Ref) {
	if o.At >= 0 {
		if now := t.Now(); o.At > now {
			t.Sleep(o.At.Sub(now))
		}
	}
	r := refs[o.Obj]
	switch o.Code {
	case opInit:
		r.Init(t, o.Site)
	case opUse:
		switch {
		case o.Bug >= 0 && !p.armed[o.Bug]:
			r.UseIfLive(t, o.Site)
		case o.Bug >= 0 && p.cfg.TSO:
			// The armed TSO probe faults iff the read observes a stale
			// state — committed-but-disposed is fine, buffered-but-unseen
			// is the bug.
			r.UseFresh(t, o.Site)
		default:
			r.Use(t, o.Site)
		}
	case opUseGuard:
		r.UseIfLive(t, o.Site)
	case opDispose:
		r.Dispose(t, o.Site)
	case opAPIRead:
		r.APICall(t, o.Site, false, o.Dur)
	case opAPIWrite:
		r.APICall(t, o.Site, true, o.Dur)
	}
	if p.fenceAfter != "" && o.Site == p.fenceAfter {
		h.Fence(t)
	}
}

// Fingerprint renders the whole script deterministically — threads, ops,
// times, sites, bugs, arming — for byte-level reproducibility checks: two
// Generate calls with the same Config must produce identical
// fingerprints.
func (p *Program) Fingerprint() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s seed %d\n", p.cfg.Name, p.cfg.Seed)
	if p.cfg.TSO {
		sb.WriteString("memmodel tso\n")
	}
	dump := func(label string, ops []op) {
		for _, o := range ops {
			fmt.Fprintf(&sb, "  %s %s at=%d obj=%s site=%s dur=%d bug=%d\n",
				label, o.Code, int64(o.At), p.objs[o.Obj], o.Site, int64(o.Dur), o.Bug)
		}
	}
	for i, t := range p.threads {
		fmt.Fprintf(&sb, "thread %d %s children=%v\n", i, t.Name, t.Children)
		dump("pre", t.Pre)
		dump("op", t.Ops)
		dump("post", t.Post)
	}
	for _, b := range p.bugs {
		fmt.Fprintf(&sb, "%s at=%d armed=%v\n", b, int64(b.At), p.armed[b.Index])
	}
	return sb.String()
}
