// Package stats provides the measurement helpers the evaluation harness
// uses: the delay-overlap ratio of §3.3, order statistics over repeated
// probabilistic experiments (the paper repeats every experiment 15 times,
// §6.1), and slowdown aggregation.
//
// All order statistics in this package use the nearest-rank convention:
// the p-th percentile of n sorted samples is the element at rank
// ⌈p/100·n⌉, and the median is the lower-middle element s[(n−1)/2] —
// exactly Percentile(xs, 50). Nothing interpolates: on the tiny,
// integer-valued samples the harness aggregates (runs-to-exposure over a
// handful of sessions), interpolation would invent run counts no session
// ever observed, and it would put MedianInt, MedianFloat, and
// Percentile(·, 50) in disagreement on identical data. The same
// convention is mirrored by obs.HistView.Quantile so controller-side
// and report-side percentiles agree.
package stats

import (
	"math"
	"sort"

	"waffle/internal/core"
	"waffle/internal/sim"
)

// Repetitions is the paper's repetition count for probabilistic
// experiments (§6.1).
const Repetitions = 15

// OverlapRatio computes §3.3's delay-overlap metric: the complement of the
// ratio between the "time projection" (union length) of all delays and the
// total delay duration injected. 0 = no overlap; → (D−1)/D when all D
// delays coincide.
func OverlapRatio(ivs []core.Interval) float64 {
	if len(ivs) == 0 {
		return 0
	}
	var total sim.Duration
	spans := make([]core.Interval, len(ivs))
	copy(spans, ivs)
	for _, iv := range spans {
		total += iv.Dur()
	}
	if total <= 0 {
		return 0
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	var union sim.Duration
	curStart, curEnd := spans[0].Start, spans[0].End
	for _, iv := range spans[1:] {
		if iv.Start > curEnd {
			union += curEnd.Sub(curStart)
			curStart, curEnd = iv.Start, iv.End
			continue
		}
		if iv.End > curEnd {
			curEnd = iv.End
		}
	}
	union += curEnd.Sub(curStart)
	return 1 - float64(union)/float64(total)
}

// MedianInt returns the nearest-rank median of xs (lower middle for even
// lengths); 0 for an empty slice.
func MedianInt(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	s := make([]int, len(xs))
	copy(s, xs)
	sort.Ints(s)
	return s[(len(s)-1)/2]
}

// MedianFloat returns the nearest-rank median of xs (lower middle for
// even lengths, matching MedianInt and Percentile(xs, 50)); 0 for an
// empty slice.
func MedianFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return s[(len(s)-1)/2]
}

// Percentile returns the p-th percentile of xs (0 ≤ p ≤ 100) by the
// nearest-rank method: the smallest element with at least ⌈p/100·n⌉
// elements ≤ it. It is exact on the tiny samples the runs-to-exposure
// report aggregates (no interpolation invents unobserved run counts).
// Empty input yields 0; p ≤ 0 yields the minimum, p ≥ 100 the maximum.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// MeanCI95 returns the sample mean of xs and the half-width of its
// normal-approximation 95% confidence interval (1.96·s/√n). Samples of
// fewer than two points have no dispersion estimate: the half-width is 0
// and the mean is 0 (n=0) or the single value (n=1).
func MeanCI95(xs []float64) (mean, half float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	mean = Mean(xs)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	return mean, 1.96 * sd / math.Sqrt(float64(n))
}

// Mean returns the arithmetic mean of xs; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Majority reports the value occurring in at least ceil(n/2)+... — the
// paper's criterion "at least 10 of 15 attempts" generalized: it returns
// the most frequent value and whether it reaches threshold occurrences.
func Majority(xs []int, threshold int) (value int, ok bool) {
	if len(xs) == 0 {
		return 0, false
	}
	counts := make(map[int]int)
	best, bestN := xs[0], 0
	for _, x := range xs {
		counts[x]++
		if counts[x] > bestN || (counts[x] == bestN && x < best) {
			best, bestN = x, counts[x]
		}
	}
	return best, bestN >= threshold
}

// ExposeResult summarizes one repetition of a bug-exposure experiment.
type ExposeResult struct {
	Runs     int     // runs to expose (0 = missed)
	Slowdown float64 // total time over base time
}

// RepeatExpose performs n independent exposure sessions (distinct base
// seeds) of tool-builder tb against program-builder pb and collects
// per-repetition results. Builders return fresh instances so no state
// leaks between repetitions.
func RepeatExpose(n int, maxRuns int, seed0 int64, pb func() core.Program, tb func() core.Tool) []ExposeResult {
	return RepeatExposeParallel(n, maxRuns, seed0, 1, pb, tb)
}

// RepeatExposeParallel is RepeatExpose with each session's detection runs
// fanned over workers goroutines (core.Session.ExposeParallel). The
// orchestrator's determinism guarantee makes the results identical to the
// sequential search — only wall-clock time changes. workers <= 1 runs
// sequentially.
func RepeatExposeParallel(n int, maxRuns int, seed0 int64, workers int, pb func() core.Program, tb func() core.Tool) []ExposeResult {
	out := make([]ExposeResult, 0, n)
	for i := 0; i < n; i++ {
		s := &core.Session{
			Prog:     pb(),
			Tool:     tb(),
			MaxRuns:  maxRuns,
			BaseSeed: seed0 + int64(i)*10_007,
		}
		o := s.ExposeParallel(workers)
		out = append(out, ExposeResult{Runs: o.RunsToExpose(), Slowdown: o.Slowdown()})
	}
	return out
}

// Summary condenses repeated exposure results per the paper's reporting
// rules (§6.2): a bug "detected in k runs" must hold in a majority of
// attempts; flakier bugs report the median; misses count separately.
type Summary struct {
	Attempts       int
	Exposed        int     // attempts that exposed the bug at all
	RunsReported   int     // majority value, or median across exposing attempts
	MajorityStable bool    // true when ≥10/15-style majority agreed
	MedianSlowdown float64 // median slowdown across exposing attempts
}

// Summarize condenses results with majority threshold (use 10 for the
// paper's 10-of-15 rule).
func Summarize(results []ExposeResult, threshold int) Summary {
	s := Summary{Attempts: len(results)}
	var runs []int
	var slows []float64
	for _, r := range results {
		if r.Runs > 0 {
			s.Exposed++
			runs = append(runs, r.Runs)
			slows = append(slows, r.Slowdown)
		}
	}
	if len(runs) == 0 {
		return s
	}
	if v, ok := Majority(runs, threshold); ok {
		s.RunsReported = v
		s.MajorityStable = true
	} else {
		s.RunsReported = MedianInt(runs)
	}
	s.MedianSlowdown = MedianFloat(slows)
	return s
}
