package stats

import (
	"math"
	"testing"
	"testing/quick"

	"waffle/internal/core"
	"waffle/internal/memmodel"
	"waffle/internal/sim"
)

func iv(start, end sim.Time) core.Interval { return core.Interval{Site: "s", Start: start, End: end} }

func TestOverlapRatioDisjoint(t *testing.T) {
	r := OverlapRatio([]core.Interval{iv(0, 10), iv(20, 30), iv(40, 50)})
	if r != 0 {
		t.Fatalf("disjoint overlap = %v, want 0", r)
	}
}

func TestOverlapRatioIdentical(t *testing.T) {
	// D identical delays: ratio = (D−1)/D.
	r := OverlapRatio([]core.Interval{iv(0, 100), iv(0, 100), iv(0, 100), iv(0, 100)})
	if math.Abs(r-0.75) > 1e-9 {
		t.Fatalf("identical overlap = %v, want 0.75", r)
	}
}

func TestOverlapRatioPartial(t *testing.T) {
	// [0,100] and [50,150]: union 150, total 200 → 0.25.
	r := OverlapRatio([]core.Interval{iv(0, 100), iv(50, 150)})
	if math.Abs(r-0.25) > 1e-9 {
		t.Fatalf("partial overlap = %v, want 0.25", r)
	}
}

func TestOverlapRatioEmptyAndZero(t *testing.T) {
	if OverlapRatio(nil) != 0 {
		t.Fatal("nil overlap != 0")
	}
	if OverlapRatio([]core.Interval{iv(5, 5)}) != 0 {
		t.Fatal("zero-length interval overlap != 0")
	}
}

func TestOverlapRatioUnsortedInput(t *testing.T) {
	r := OverlapRatio([]core.Interval{iv(50, 150), iv(0, 100)})
	if math.Abs(r-0.25) > 1e-9 {
		t.Fatalf("unsorted overlap = %v, want 0.25", r)
	}
}

// Property: ratio stays in [0, 1) and is permutation-invariant.
func TestOverlapRatioProperty(t *testing.T) {
	err := quick.Check(func(raw []uint16) bool {
		var ivs []core.Interval
		for i := 0; i+1 < len(raw); i += 2 {
			start := sim.Time(raw[i])
			ivs = append(ivs, iv(start, start.Add(sim.Duration(raw[i+1]%1000)+1)))
		}
		if len(ivs) == 0 {
			return true
		}
		r := OverlapRatio(ivs)
		if r < 0 || r >= 1 {
			return false
		}
		rev := make([]core.Interval, len(ivs))
		for i, v := range ivs {
			rev[len(ivs)-1-i] = v
		}
		return math.Abs(OverlapRatio(rev)-r) < 1e-9
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMedians(t *testing.T) {
	if MedianInt([]int{5, 1, 3}) != 3 {
		t.Fatal("MedianInt odd")
	}
	if MedianInt([]int{4, 1, 3, 2}) != 2 {
		t.Fatal("MedianInt even (lower middle)")
	}
	if MedianInt(nil) != 0 {
		t.Fatal("MedianInt empty")
	}
	if MedianFloat([]float64{1, 9, 5}) != 5 {
		t.Fatal("MedianFloat odd")
	}
	if MedianFloat([]float64{1, 2, 3, 4}) != 2 {
		t.Fatal("MedianFloat even (lower middle, nearest rank)")
	}
	if MedianFloat(nil) != 0 {
		t.Fatal("MedianFloat empty")
	}
}

// The package convention: MedianInt, MedianFloat, and Percentile(·, 50)
// are the same statistic. An eval summary that medians with one helper
// and percentiles with another must never disagree with itself, so pin
// all three to nearest rank on identical samples of every parity.
func TestMedianHelpersAgree(t *testing.T) {
	samples := [][]float64{
		{7},
		{3, 9},
		{5, 1, 3},
		{4, 1, 3, 2},
		{10, 2, 8, 4, 6},
		{1, 1, 2, 50, 50, 50},
		{2, 2, 2, 2},
	}
	for _, xs := range samples {
		ints := make([]int, len(xs))
		for i, x := range xs {
			ints[i] = int(x)
		}
		mf := MedianFloat(xs)
		p50 := Percentile(xs, 50)
		mi := MedianInt(ints)
		if mf != p50 {
			t.Errorf("sample %v: MedianFloat %v != Percentile50 %v", xs, mf, p50)
		}
		if float64(mi) != mf {
			t.Errorf("sample %v: MedianInt %d != MedianFloat %v", xs, mi, mf)
		}
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean empty")
	}
}

func TestMajority(t *testing.T) {
	v, ok := Majority([]int{2, 2, 2, 3, 2}, 4)
	if !ok || v != 2 {
		t.Fatalf("Majority = %d, %v", v, ok)
	}
	_, ok = Majority([]int{1, 2, 3}, 2)
	if ok {
		t.Fatal("spurious majority")
	}
	if _, ok := Majority(nil, 1); ok {
		t.Fatal("majority on empty")
	}
}

// racy program for RepeatExpose round trips.
func racyProg() core.Program {
	return &core.SimProgram{
		Label: "racy",
		Body: func(root *sim.Thread, h *memmodel.Heap) {
			r := h.NewRef("r")
			u := root.Spawn("u", func(th *sim.Thread) {
				th.Sleep(3 * sim.Millisecond)
				r.Use(th, "use")
			})
			root.Sleep(1 * sim.Millisecond)
			r.Init(root, "init")
			root.Join(u)
		},
	}
}

func TestRepeatExposeAndSummarize(t *testing.T) {
	results := RepeatExpose(Repetitions, 10, 1,
		racyProg,
		func() core.Tool { return core.NewWaffle(core.Options{}) })
	if len(results) != Repetitions {
		t.Fatalf("results = %d", len(results))
	}
	sum := Summarize(results, 10)
	if sum.Exposed != Repetitions {
		t.Fatalf("exposed %d/%d", sum.Exposed, Repetitions)
	}
	if !sum.MajorityStable || sum.RunsReported != 2 {
		t.Fatalf("summary = %+v, want stable 2 runs", sum)
	}
	if sum.MedianSlowdown <= 0 {
		t.Fatalf("median slowdown = %v", sum.MedianSlowdown)
	}
}

func TestSummarizeAllMissed(t *testing.T) {
	sum := Summarize([]ExposeResult{{Runs: 0}, {Runs: 0}}, 2)
	if sum.Exposed != 0 || sum.RunsReported != 0 {
		t.Fatalf("summary = %+v", sum)
	}
}

// The runs-to-exposure report calls Percentile and MeanCI95 on per-corpus
// samples that can be arbitrarily small (a one-program corpus, a tool
// that exposed nothing). The table pins the degenerate cases: n = 0, 1, 2
// plus enough larger samples to fix the nearest-rank convention.
func TestPercentileTinySamples(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64
	}{
		{"empty p50", nil, 50, 0},
		{"empty p0", []float64{}, 0, 0},
		{"single p0", []float64{7}, 0, 7},
		{"single p50", []float64{7}, 50, 7},
		{"single p100", []float64{7}, 100, 7},
		{"pair p0 is min", []float64{9, 2}, 0, 2},
		{"pair p49 is lower", []float64{9, 2}, 49, 2},
		{"pair p50 is lower", []float64{9, 2}, 50, 2},
		{"pair p51 is upper", []float64{9, 2}, 51, 9},
		{"pair p100 is max", []float64{9, 2}, 100, 9},
		{"four p25", []float64{4, 1, 3, 2}, 25, 1},
		{"four p75", []float64{4, 1, 3, 2}, 75, 3},
		{"ten p90", []float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}, 90, 9},
		{"ten p99", []float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}, 99, 10},
		{"negative p clamps to min", []float64{5, 6}, -10, 5},
		{"p over 100 clamps to max", []float64{5, 6}, 250, 6},
	}
	for _, c := range cases {
		if got := Percentile(c.xs, c.p); got != c.want {
			t.Errorf("%s: Percentile(%v, %v) = %v, want %v", c.name, c.xs, c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMeanCI95TinySamples(t *testing.T) {
	cases := []struct {
		name       string
		xs         []float64
		mean, half float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{4}, 4, 0},
		{"pair equal", []float64{3, 3}, 3, 0},
		// n=2, values 2 and 4: sd = √2, half = 1.96·√2/√2 = 1.96.
		{"pair spread", []float64{2, 4}, 3, 1.96},
	}
	for _, c := range cases {
		mean, half := MeanCI95(c.xs)
		if math.Abs(mean-c.mean) > 1e-12 || math.Abs(half-c.half) > 1e-12 {
			t.Errorf("%s: MeanCI95(%v) = (%v, %v), want (%v, %v)",
				c.name, c.xs, mean, half, c.mean, c.half)
		}
	}
}
