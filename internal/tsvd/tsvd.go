// Package tsvd reimplements TSVD (Li et al., SOSP '19) — the
// thread-safety-violation detector whose design Waffle's paper adapts and
// departs from — to the extent the paper's evaluation exercises it:
// instrumentation-site and injection-site statistics (Table 2) and delay
// overlap measurements (§3.3).
//
// TSVD instruments call sites of thread-unsafe APIs only. At run time it
// maintains a candidate set of site pairs via near-miss tracking (same
// object, different threads, |τ1−τ2| ≤ δ), removes pairs via
// happens-before inference, and injects fixed-length delays with
// probability decay, identifying and injecting in the same runs (§2).
package tsvd

import (
	"sort"

	"waffle/internal/core"
	"waffle/internal/memmodel"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// Options configures the detector. Zero values take TSVD's defaults (the
// same δ and delay length Waffle's evaluation uses, §6.1).
type Options struct {
	Window     sim.Duration // near-miss window δ
	FixedDelay sim.Duration // delay length
	Decay      float64      // probability decay λ
	InstrCost  sim.Duration // per-instrumented-call overhead
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = core.DefaultWindow
	}
	if o.FixedDelay <= 0 {
		o.FixedDelay = core.DefaultFixedDelay
	}
	if o.Decay <= 0 {
		o.Decay = core.DefaultDecay
	}
	if o.InstrCost == 0 {
		o.InstrCost = core.DefaultInstrCost
	} else if o.InstrCost < 0 {
		o.InstrCost = 0
	}
	return o
}

// sitePair is an unordered candidate pair {ℓ1, ℓ2}.
type sitePair struct{ a, b trace.SiteID }

func mkPair(a, b trace.SiteID) sitePair {
	if b < a {
		a, b = b, a
	}
	return sitePair{a, b}
}

type histEv struct {
	site  trace.SiteID
	tid   int
	t     sim.Time
	write bool
}

type delayRec struct {
	start, end sim.Time
	tid        int
	valid      bool
}

// Tool is a TSVD instance. State (candidate set, probabilities, inferred
// removals) persists across runs; call BeginRun between runs. It
// implements memmodel.Hook and reacts only to thread-unsafe API kinds.
type Tool struct {
	opts Options

	pairs      map[sitePair]bool
	removed    map[sitePair]bool
	partners   map[trace.SiteID][]trace.SiteID
	probs      map[trace.SiteID]float64
	instrSites map[trace.SiteID]bool
	injSites   map[trace.SiteID]bool
	runs       int

	hist       map[trace.ObjID][]histEv
	lastDelay  map[trace.SiteID]delayRec
	lastAccess map[int]sim.Time
	seen       map[int]bool
	stats      core.DelayStats
}

// New returns a TSVD instance with defaults applied.
func New(opts Options) *Tool {
	return &Tool{
		opts:       opts.withDefaults(),
		pairs:      make(map[sitePair]bool),
		removed:    make(map[sitePair]bool),
		partners:   make(map[trace.SiteID][]trace.SiteID),
		probs:      make(map[trace.SiteID]float64),
		instrSites: make(map[trace.SiteID]bool),
		injSites:   make(map[trace.SiteID]bool),
	}
}

// BeginRun resets per-run state, keeping the learned candidate set.
func (t *Tool) BeginRun() {
	t.runs++
	t.hist = make(map[trace.ObjID][]histEv)
	t.lastDelay = make(map[trace.SiteID]delayRec)
	t.lastAccess = make(map[int]sim.Time)
	t.seen = make(map[int]bool)
	t.stats = core.DelayStats{}
}

// Stats returns the current run's delay activity. The copy owns its
// Intervals slice, matching the Injector/Online contract: callers may hold
// it while the tool keeps recording.
func (t *Tool) Stats() core.DelayStats { return t.stats.Clone() }

// InstrumentationSiteCount reports the number of unique thread-unsafe API
// call sites observed (Table 2's TSV "Instrumentation Sites").
func (t *Tool) InstrumentationSiteCount() int { return len(t.instrSites) }

// InjectionSiteCount reports the number of unique sites ever admitted to
// the candidate set (Table 2's TSV "Injection Sites").
func (t *Tool) InjectionSiteCount() int { return len(t.injSites) }

// LiveSiteCount reports the number of sites that can still inject: some
// un-removed pair and positive probability. Zero means the tool has gone
// quiet — every remaining run is injection-free. The adaptive harness's
// tsvdTool adapter surfaces this as core.SiteProber.
func (t *Tool) LiveSiteCount() int {
	n := 0
	for site, p := range t.probs {
		if p > 0 && t.siteLive(site) {
			n++
		}
	}
	return n
}

// Pairs returns the live candidate pairs, sorted for determinism.
func (t *Tool) Pairs() [][2]trace.SiteID {
	var out [][2]trace.SiteID
	for p := range t.pairs {
		if !t.removed[p] {
			out = append(out, [2]trace.SiteID{p.a, p.b})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

var _ memmodel.Hook = (*Tool)(nil)

// OnAccess implements memmodel.Hook.
func (t *Tool) OnAccess(th *sim.Thread, site trace.SiteID, obj trace.ObjID, kind trace.Kind, dur sim.Duration) {
	if !kind.IsAPI() {
		return
	}
	if t.opts.InstrCost > 0 {
		th.Sleep(t.opts.InstrCost)
	}
	t.instrSites[site] = true
	t.maybeDelay(th, site)
	t.inferHB(th, site)
	t.identify(th, site, obj, kind == trace.KindAPIWrite)
	now := th.Now()
	t.hist[obj] = append(t.hist[obj], histEv{site: site, tid: th.ID(), t: now, write: kind == trace.KindAPIWrite})
	if n := len(t.hist[obj]); n > core.DefaultHistoryDepth {
		t.hist[obj] = t.hist[obj][n-core.DefaultHistoryDepth:]
	}
	t.lastAccess[th.ID()] = now
	t.seen[th.ID()] = true
}

func (t *Tool) maybeDelay(th *sim.Thread, site trace.SiteID) {
	if !t.siteLive(site) {
		return
	}
	p := t.probs[site]
	if p <= 0 || th.World().Rand() >= p {
		return
	}
	start := th.Now()
	end := start.Add(t.opts.FixedDelay)
	t.stats.Count++
	t.stats.Total += t.opts.FixedDelay
	t.stats.Intervals = append(t.stats.Intervals, core.Interval{Site: site, Start: start, End: end})
	th.Sleep(t.opts.FixedDelay)
	t.lastDelay[site] = delayRec{start: start, end: end, tid: th.ID(), valid: true}
	np := p - t.opts.Decay
	if np < 0 {
		np = 0
	}
	t.probs[site] = np
}

func (t *Tool) siteLive(site trace.SiteID) bool {
	for _, other := range t.partners[site] {
		if !t.removed[mkPair(site, other)] {
			return true
		}
	}
	return false
}

// inferHB removes pairs whose delay appears to have propagated as a stall
// of the partner site's thread (§2's happens-before inference).
func (t *Tool) inferHB(th *sim.Thread, site trace.SiteID) {
	now := th.Now()
	for _, other := range t.partners[site] {
		p := mkPair(site, other)
		if t.removed[p] {
			continue
		}
		ld := t.lastDelay[other]
		if !ld.valid || ld.tid == th.ID() {
			continue
		}
		if ld.end > now || now.Sub(ld.end) > t.opts.Window {
			continue
		}
		if !t.seen[th.ID()] {
			continue
		}
		if t.lastAccess[th.ID()] < ld.start {
			t.removed[p] = true
		}
	}
}

// identify is TSVD's near-miss tracking: same object, different threads,
// |τ1−τ2| ≤ δ, at least one write.
func (t *Tool) identify(th *sim.Thread, site trace.SiteID, obj trace.ObjID, write bool) {
	now := th.Now()
	for _, h := range t.hist[obj] {
		if h.tid == th.ID() {
			continue
		}
		gap := now.Sub(h.t)
		if gap < 0 {
			gap = -gap
		}
		if gap > t.opts.Window {
			continue
		}
		if !h.write && !write {
			continue
		}
		p := mkPair(h.site, site)
		if t.removed[p] || t.pairs[p] {
			continue
		}
		t.pairs[p] = true
		t.addPartner(p.a, p.b)
		t.addPartner(p.b, p.a)
		for _, s := range []trace.SiteID{p.a, p.b} {
			t.injSites[s] = true
			if _, ok := t.probs[s]; !ok {
				t.probs[s] = 1.0
			}
		}
	}
}

func (t *Tool) addPartner(a, b trace.SiteID) {
	for _, s := range t.partners[a] {
		if s == b {
			return
		}
	}
	t.partners[a] = append(t.partners[a], b)
}

// Exposure is the outcome of an Expose search.
type Exposure struct {
	Run  int // run in which the first TSV manifested (0 = none)
	TSVs int // violations manifested in that run
}

// Expose drives identification+injection runs against prog until a
// thread-safety violation manifests or maxRuns is exhausted — TSVD's
// end-to-end usage, for completeness of the baseline. Run i uses seed
// baseSeed+i−1; the tool's candidate set persists across runs.
func (t *Tool) Expose(prog interface {
	Execute(seed int64, hook memmodel.Hook) core.ExecResult
}, maxRuns int, baseSeed int64) Exposure {
	for run := 1; run <= maxRuns; run++ {
		t.BeginRun()
		res := prog.Execute(baseSeed+int64(run)-1, t)
		if res.TSVs > 0 {
			return Exposure{Run: run, TSVs: res.TSVs}
		}
	}
	return Exposure{}
}
