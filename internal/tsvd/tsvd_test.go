package tsvd

import (
	"testing"

	"waffle/internal/core"
	"waffle/internal/memmodel"
	"waffle/internal/sim"
)

// dictRace: two threads hammer a shared dictionary through thread-unsafe
// API calls that naturally execute close together.
func dictRace(root *sim.Thread, h *memmodel.Heap) {
	dict := h.NewRef("dict")
	w := root.Spawn("writer", func(th *sim.Thread) {
		for i := 0; i < 5; i++ {
			dict.APICall(th, "w.go:10", true, 50*sim.Microsecond)
			th.Sleep(200 * sim.Microsecond)
		}
	})
	for i := 0; i < 5; i++ {
		dict.APICall(root, "r.go:20", false, 50*sim.Microsecond)
		root.Sleep(200 * sim.Microsecond)
	}
	root.Join(w)
}

func runOnce(t *testing.T, tool *Tool, seed int64, body func(*sim.Thread, *memmodel.Heap)) core.ExecResult {
	t.Helper()
	tool.BeginRun()
	prog := &core.SimProgram{Label: "tsvd", Body: body}
	return prog.Execute(seed, tool)
}

// sparseRace: exactly one near-miss write pair per run — no repeated
// hammering, so no same-run delays and no overlap-driven removals.
func sparseRace(root *sim.Thread, h *memmodel.Heap) {
	dict := h.NewRef("dict")
	w := root.Spawn("writer", func(th *sim.Thread) {
		th.Sleep(1 * sim.Millisecond)
		dict.APICall(th, "w.go:10", true, 50*sim.Microsecond)
	})
	dict.APICall(root, "r.go:20", true, 50*sim.Microsecond)
	root.Join(w)
}

func TestTSVDIdentifiesNearMissPairs(t *testing.T) {
	tool := New(Options{})
	runOnce(t, tool, 1, sparseRace)
	if tool.InstrumentationSiteCount() != 2 {
		t.Fatalf("instrumentation sites = %d, want 2", tool.InstrumentationSiteCount())
	}
	if tool.InjectionSiteCount() != 2 {
		t.Fatalf("injection sites = %d, want 2", tool.InjectionSiteCount())
	}
	pairs := tool.Pairs()
	if len(pairs) != 1 {
		t.Fatalf("pairs = %v", pairs)
	}
}

func TestTSVDDenseHammeringTriggersRemovals(t *testing.T) {
	// Under dense same-object traffic, same-run delays overlap and the
	// happens-before inference removes pairs — the §4.1 unreliability that
	// motivates Waffle's redesign. Sites stay counted as injection sites.
	tool := New(Options{})
	runOnce(t, tool, 1, dictRace)
	if tool.InjectionSiteCount() != 2 {
		t.Fatalf("injection sites = %d, want 2", tool.InjectionSiteCount())
	}
	if n := len(tool.Pairs()); n != 0 {
		t.Fatalf("expected overlap-driven removal, %d pairs live", n)
	}
}

func TestTSVDIgnoresReadReadAndMemOrderKinds(t *testing.T) {
	tool := New(Options{})
	runOnce(t, tool, 1, func(root *sim.Thread, h *memmodel.Heap) {
		dict := h.NewRef("dict")
		obj := h.NewRef("obj")
		obj.Init(root, "mem.go:1") // MemOrder kind: invisible to TSVD
		w := root.Spawn("reader", func(th *sim.Thread) {
			dict.APICall(th, "r2.go:5", false, 50*sim.Microsecond)
			obj.Use(th, "mem.go:2")
		})
		dict.APICall(root, "r1.go:5", false, 50*sim.Microsecond)
		root.Join(w)
	})
	if n := len(tool.Pairs()); n != 0 {
		t.Fatalf("read/read pair admitted: %v", tool.Pairs())
	}
	if tool.InstrumentationSiteCount() != 2 {
		t.Fatalf("instr sites = %d (MemOrder sites leaked in?)", tool.InstrumentationSiteCount())
	}
}

func TestTSVDInjectsOnLaterOccurrences(t *testing.T) {
	tool := New(Options{})
	runOnce(t, tool, 1, dictRace)
	// The pair forms mid-run; later dynamic instances in the same run get
	// delays (the same-run philosophy, unlike Waffle).
	if tool.Stats().Count == 0 {
		t.Fatal("no delays injected in the identification run")
	}
	for _, iv := range tool.Stats().Intervals {
		if iv.Dur() != core.DefaultFixedDelay {
			t.Fatalf("delay = %v, want fixed", iv.Dur())
		}
	}
}

func TestTSVDExposesTSVUnderAsymmetricDelay(t *testing.T) {
	// Without delays, the writer's window misses the root's late API call
	// by ~1.5ms. When only the writer's site is delayed (+100ms), its
	// window lands on the root's late call at ~103ms: a TSV manifests.
	// Symmetric delays shift both threads equally and expose nothing —
	// the asymmetric combination arises over runs via probability decay.
	var heap *memmodel.Heap
	body := func(root *sim.Thread, h *memmodel.Heap) {
		heap = h
		dict := h.NewRef("dict")
		w := root.Spawn("w2", func(th *sim.Thread) {
			th.Sleep(2 * sim.Millisecond)
			dict.APICall(th, "b.go:2", true, 2*sim.Millisecond) // natural [2,4]
		})
		dict.APICall(root, "a.go:1", true, 1*sim.Millisecond) // natural [0,1]
		root.Sleep(101 * sim.Millisecond)
		dict.APICall(root, "late.go:9", true, 3*sim.Millisecond) // natural ~[102,105]
		root.Join(w)
	}
	tool := New(Options{})
	exposed := false
	for i := 0; i < 30 && !exposed; i++ {
		runOnce(t, tool, int64(i), body)
		exposed = len(heap.TSVs()) > 0
	}
	if !exposed {
		t.Fatal("no TSV manifested in 30 runs")
	}
}

func TestTSVDDecayStopsInjection(t *testing.T) {
	tool := New(Options{Decay: 0.5})
	for i := 0; i < 10; i++ {
		runOnce(t, tool, int64(i), dictRace)
	}
	runOnce(t, tool, 99, dictRace)
	if got := tool.Stats().Count; got != 0 {
		t.Fatalf("still injecting after decay: %d", got)
	}
}

func TestTSVDOverlapLowOnSparseSites(t *testing.T) {
	// §3.3: TSVD's delay overlap stays low because thread-unsafe API call
	// sites are sparse. Two sites, delays mostly sequential.
	tool := New(Options{})
	var all []core.Interval
	for i := 0; i < 5; i++ {
		runOnce(t, tool, int64(i), dictRace)
		all = append(all, tool.Stats().Intervals...)
	}
	if len(all) == 0 {
		t.Skip("no delays to measure")
	}
}

func TestTSVDExposeDriver(t *testing.T) {
	// The asymmetric scenario from TestTSVDExposesTSVUnderAsymmetricDelay,
	// driven end-to-end through Expose.
	body := func(root *sim.Thread, h *memmodel.Heap) {
		dict := h.NewRef("dict")
		w := root.Spawn("w2", func(th *sim.Thread) {
			th.Sleep(2 * sim.Millisecond)
			dict.APICall(th, "b.go:2", true, 2*sim.Millisecond)
		})
		dict.APICall(root, "a.go:1", true, 1*sim.Millisecond)
		root.Sleep(101 * sim.Millisecond)
		dict.APICall(root, "late.go:9", true, 3*sim.Millisecond)
		root.Join(w)
	}
	prog := &core.SimProgram{Label: "tsvd-expose", Body: body}
	exp := New(Options{}).Expose(prog, 30, 1)
	if exp.Run == 0 {
		t.Fatal("Expose found no TSV in 30 runs")
	}
	if exp.TSVs == 0 {
		t.Fatal("exposure with zero TSVs")
	}
}

func TestTSVDExposeCleanProgramFindsNothing(t *testing.T) {
	prog := &core.SimProgram{Label: "clean", Body: func(root *sim.Thread, h *memmodel.Heap) {
		d := h.NewRef("dict")
		var m sim.Mutex
		w := root.Spawn("w", func(th *sim.Thread) {
			m.Lock(th)
			d.APICall(th, "locked2", true, 100*sim.Microsecond)
			m.Unlock(th)
		})
		m.Lock(root)
		d.APICall(root, "locked1", true, 100*sim.Microsecond)
		m.Unlock(root)
		root.Join(w)
	}}
	if exp := New(Options{}).Expose(prog, 10, 1); exp.Run != 0 {
		t.Fatalf("lock-protected program exposed a TSV: %+v", exp)
	}
}
