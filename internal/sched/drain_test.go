package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Draining a quiet lifecycle rejects every later submission with
// ErrDraining and commits nothing.
func TestDrainRejectsNewSubmissions(t *testing.T) {
	p := Pool{Workers: 2, Life: NewLifecycle()}
	p.Drain()
	if !p.Life.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	ran := 0
	n, err := RunCtx(context.Background(), p, 0, 3, func(ctx context.Context, i int) (int, error) {
		ran++
		return i, nil
	}, func(r Result[int]) bool { return true })
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("RunCtx after Drain: err = %v, want ErrDraining", err)
	}
	if n != 0 || ran != 0 {
		t.Fatalf("RunCtx after Drain committed %d, ran %d jobs; want 0, 0", n, ran)
	}
}

// Drain called while a Run is in flight blocks until that Run returns;
// no job may still be executing when Drain comes back.
func TestDrainWaitsForInflightRun(t *testing.T) {
	p := Pool{Workers: 2, Life: NewLifecycle()}
	var executing atomic.Int32
	release := make(chan struct{})
	done := make(chan int)
	go func() {
		n, err := RunCtx(context.Background(), p, 0, 5, func(ctx context.Context, i int) (int, error) {
			executing.Add(1)
			<-release
			executing.Add(-1)
			return i, nil
		}, func(r Result[int]) bool { return true })
		if err != nil {
			t.Errorf("in-flight RunCtx: %v", err)
		}
		done <- n
	}()

	// Wait for the first wave to be inside the job body, then drain
	// concurrently with the release.
	for executing.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	drained := make(chan struct{})
	go func() {
		p.Drain()
		close(drained)
	}()
	select {
	case <-drained:
		t.Fatal("Drain returned while jobs were still blocked inside the pool")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	<-drained
	if got := executing.Load(); got != 0 {
		t.Fatalf("%d jobs still executing after Drain returned", got)
	}
	if n := <-done; n != 6 {
		t.Fatalf("in-flight Run committed %d results, want 6", n)
	}
}

// The drain-while-submitting table: submitters race Drain at varying
// concurrency. Every submission must either run to full completion or be
// rejected atomically (ErrDraining, zero commits) — never a torn middle —
// and after Drain returns no job is still executing.
func TestDrainWhileSubmitting(t *testing.T) {
	cases := []struct {
		name       string
		submitters int
		jobs       int
		workers    int
	}{
		{"one-submitter", 1, 8, 2},
		{"competing-submitters", 4, 6, 2},
		{"many-short", 8, 1, 1},
		{"wide-pool", 3, 16, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			life := NewLifecycle()
			var executing atomic.Int32
			var wg sync.WaitGroup
			type outcome struct {
				n   int
				err error
			}
			outcomes := make([]outcome, tc.submitters)
			start := make(chan struct{})
			for s := 0; s < tc.submitters; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					<-start
					p := Pool{Workers: tc.workers, Life: life}
					n, err := RunCtx(context.Background(), p, 0, tc.jobs-1, func(ctx context.Context, i int) (int, error) {
						executing.Add(1)
						defer executing.Add(-1)
						time.Sleep(100 * time.Microsecond)
						return i, nil
					}, func(r Result[int]) bool {
						if r.Err != nil {
							t.Errorf("submitter %d job %d: %v", s, r.Index, r.Err)
						}
						return true
					})
					outcomes[s] = outcome{n, err}
				}(s)
			}
			close(start)
			time.Sleep(time.Duration(tc.submitters) * 150 * time.Microsecond)
			life.Drain()
			if got := executing.Load(); got != 0 {
				t.Fatalf("%d jobs executing after Drain returned", got)
			}
			wg.Wait()
			for s, o := range outcomes {
				switch {
				case o.err == nil && o.n == tc.jobs:
					// admitted before the drain and ran to completion
				case errors.Is(o.err, ErrDraining) && o.n == 0:
					// rejected atomically
				default:
					t.Errorf("submitter %d: committed %d err %v — neither fully run (%d, nil) nor fully rejected (0, ErrDraining)",
						s, o.n, o.err, tc.jobs)
				}
			}
			// The lifecycle stays closed.
			if _, err := RunCtx(context.Background(), Pool{Workers: 1, Life: life}, 0, 0,
				func(ctx context.Context, i int) (int, error) { return i, nil },
				func(Result[int]) bool { return true }); !errors.Is(err, ErrDraining) {
				t.Errorf("post-drain submission: err = %v, want ErrDraining", err)
			}
		})
	}
}

// Cancelling the context mid-wave discards the wave: commits stop at the
// last full wave boundary and RunCtx surfaces ctx's error. No result from
// the cancelled wave reaches commit.
func TestRunCtxCancelMidWaveDiscardsWave(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Pool{Workers: 2, Wave: 2}
	var committed []int
	n, err := RunCtx(ctx, p, 0, 9, func(ctx context.Context, i int) (int, error) {
		if i >= 2 {
			// Second wave: cancel and wait for it to be observed, so the
			// wave is provably in flight when the context dies.
			cancel()
			<-ctx.Done()
			return i, ctx.Err()
		}
		return i, nil
	}, func(r Result[int]) bool {
		committed = append(committed, r.Index)
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n != 2 || len(committed) != 2 || committed[0] != 0 || committed[1] != 1 {
		t.Fatalf("committed %v (n=%d); want exactly wave 1's [0 1]", committed, n)
	}
}

// A context cancelled before RunCtx starts commits nothing and runs no
// jobs.
func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	n, err := RunCtx(ctx, Pool{Workers: 2}, 0, 3, func(ctx context.Context, i int) (int, error) {
		ran++
		return i, nil
	}, func(Result[int]) bool { return true })
	if !errors.Is(err, context.Canceled) || n != 0 || ran != 0 {
		t.Fatalf("pre-cancelled RunCtx: n=%d ran=%d err=%v", n, ran, err)
	}
}

// Two concurrent RunCtx calls sharing a semaphore never exceed its
// capacity in simultaneously executing jobs, even though each call's own
// worker cap would allow more.
func TestSharedSemaphoreBoundsGlobalWorkers(t *testing.T) {
	const cap = 2
	shared := make(chan struct{}, cap)
	var executing, peak atomic.Int32
	job := func(ctx context.Context, i int) (int, error) {
		cur := executing.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		executing.Add(-1)
		return i, nil
	}
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := Pool{Workers: 4, Shared: shared}
			if _, err := RunCtx(context.Background(), p, 0, 7, job, func(Result[int]) bool { return true }); err != nil {
				t.Errorf("RunCtx: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > cap {
		t.Fatalf("peak concurrent jobs = %d, want <= shared capacity %d", got, cap)
	}
}

// Run (the context-free wrapper) is unchanged by the lifecycle plumbing:
// full range committed in order.
func TestRunStillCommitsInOrder(t *testing.T) {
	var got []int
	n := Run(Pool{Workers: 4, Wave: 3}, 10, 20, func(ctx context.Context, i int) (string, error) {
		return fmt.Sprint(i), nil
	}, func(r Result[string]) bool {
		got = append(got, r.Index)
		return true
	})
	if n != 11 {
		t.Fatalf("committed %d, want 11", n)
	}
	for k, idx := range got {
		if idx != 10+k {
			t.Fatalf("commit order broken at %d: %v", k, got)
		}
	}
}
