package sched

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"waffle/internal/obs"
)

func TestRunCommitsInAscendingOrder(t *testing.T) {
	// Jobs finish out of order (higher indices sleep less), but commit must
	// still observe 1, 2, 3, ... like a sequential loop.
	p := Pool{Workers: 4, Wave: 4}
	var order []int
	n := Run(p, 1, 12, func(_ context.Context, i int) (int, error) {
		time.Sleep(time.Duration(13-i) * time.Millisecond / 4)
		return i * 10, nil
	}, func(r Result[int]) bool {
		if r.Err != nil {
			t.Errorf("job %d: %v", r.Index, r.Err)
		}
		if r.Value != r.Index*10 {
			t.Errorf("job %d value %d", r.Index, r.Value)
		}
		order = append(order, r.Index)
		return true
	})
	if n != 12 {
		t.Fatalf("committed %d, want 12", n)
	}
	for i, idx := range order {
		if idx != i+1 {
			t.Fatalf("commit order %v", order)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	p := Pool{Workers: 3, Wave: 9}
	var cur, peak atomic.Int32
	Run(p, 1, 9, func(_ context.Context, i int) (struct{}, error) {
		c := cur.Add(1)
		for {
			pk := peak.Load()
			if c <= pk || peak.CompareAndSwap(pk, c) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
		return struct{}{}, nil
	}, func(Result[struct{}]) bool { return true })
	if pk := peak.Load(); pk > 3 {
		t.Fatalf("peak concurrency %d exceeds Workers=3", pk)
	}
}

func TestRunStopsOnCommitFalse(t *testing.T) {
	p := Pool{Workers: 2, Wave: 2}
	var started atomic.Int32
	var committed []int
	n := Run(p, 1, 100, func(_ context.Context, i int) (int, error) {
		started.Add(1)
		return i, nil
	}, func(r Result[int]) bool {
		committed = append(committed, r.Index)
		return r.Index < 3 // stop at index 3
	})
	if n != 3 || len(committed) != 3 {
		t.Fatalf("committed %d results (%v), want 3", n, committed)
	}
	// Only waves up to the stopping one may have started: indices 1..4
	// (two waves of 2), never the 50 waves beyond.
	if s := started.Load(); s > 4 {
		t.Fatalf("%d jobs started after stop", s)
	}
}

func TestRunRecoversJobPanics(t *testing.T) {
	p := Pool{Workers: 2, Wave: 4}
	var errs int
	n := Run(p, 1, 4, func(_ context.Context, i int) (int, error) {
		if i == 2 {
			panic("simulated world blew up")
		}
		return i, nil
	}, func(r Result[int]) bool {
		if r.Index == 2 {
			var pe *PanicError
			if !errors.As(r.Err, &pe) {
				t.Fatalf("job 2 err = %v, want PanicError", r.Err)
			}
			if pe.Index != 2 || len(pe.Stack) == 0 {
				t.Fatalf("panic error incomplete: %+v", pe)
			}
			errs++
		} else if r.Err != nil {
			t.Fatalf("job %d: %v", r.Index, r.Err)
		}
		return true
	})
	if n != 4 || errs != 1 {
		t.Fatalf("committed %d, panics %d", n, errs)
	}
}

func TestRunEnforcesBudget(t *testing.T) {
	p := Pool{Workers: 2, Wave: 2, Budget: 5 * time.Millisecond}
	n := Run(p, 1, 2, func(ctx context.Context, i int) (int, error) {
		if i == 1 {
			<-ctx.Done() // a stuck run: only the budget frees it
			return 0, ctx.Err()
		}
		return i, nil
	}, func(r Result[int]) bool {
		if r.Index == 1 && !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Errorf("job 1 err = %v, want deadline exceeded", r.Err)
		}
		if r.Index == 2 && r.Err != nil {
			t.Errorf("job 2 err = %v", r.Err)
		}
		return true
	})
	if n != 2 {
		t.Fatalf("committed %d, want 2", n)
	}
}

func TestRunEmptyRange(t *testing.T) {
	n := Run(Pool{}, 5, 4, func(_ context.Context, i int) (int, error) {
		t.Fatal("job ran on empty range")
		return 0, nil
	}, func(Result[int]) bool {
		t.Fatal("commit ran on empty range")
		return true
	})
	if n != 0 {
		t.Fatalf("committed %d, want 0", n)
	}
}

func TestRunWaveDefaultsToWorkers(t *testing.T) {
	// With Wave unset, each wave is Workers wide: a stop in wave one means
	// at most Workers jobs ever start.
	var started atomic.Int32
	Run(Pool{Workers: 2}, 1, 50, func(_ context.Context, i int) (int, error) {
		started.Add(1)
		return i, nil
	}, func(r Result[int]) bool { return false })
	if s := started.Load(); s != 2 {
		t.Fatalf("started %d jobs, want 2 (one wave of Workers)", s)
	}
}

// Budget exhaustion mid-wave: a wave wider than the worker pool, with
// stuck jobs interleaved among fast ones. Every stuck job must be freed
// by its own per-job budget — including jobs that were still queued
// behind the semaphore when the first deadlines fired — and the wave must
// still commit every result, in ascending index order, with the fast
// jobs' values intact.
func TestRunBudgetExhaustionMidWave(t *testing.T) {
	var inFlight, maxInFlight atomic.Int32
	p := Pool{Workers: 2, Wave: 6, Budget: 10 * time.Millisecond}
	var order []int
	n := Run(p, 1, 6, func(ctx context.Context, i int) (int, error) {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			prev := maxInFlight.Load()
			if cur <= prev || maxInFlight.CompareAndSwap(prev, cur) {
				break
			}
		}
		if i%2 == 1 {
			<-ctx.Done() // stuck until the budget frees it
			return 0, ctx.Err()
		}
		return i * 10, nil
	}, func(r Result[int]) bool {
		order = append(order, r.Index)
		if r.Index%2 == 1 {
			if !errors.Is(r.Err, context.DeadlineExceeded) {
				t.Errorf("stuck job %d err = %v, want deadline exceeded", r.Index, r.Err)
			}
		} else {
			if r.Err != nil || r.Value != r.Index*10 {
				t.Errorf("fast job %d = (%d, %v), want (%d, nil)", r.Index, r.Value, r.Err, r.Index*10)
			}
		}
		return true
	})
	if n != 6 {
		t.Fatalf("committed %d, want 6", n)
	}
	for i, idx := range order {
		if idx != i+1 {
			t.Fatalf("commit order %v, want ascending 1..6", order)
		}
	}
	if m := maxInFlight.Load(); m != 2 {
		t.Errorf("max in-flight %d, want 2 (budget must not serialize the pool)", m)
	}
}

// A commit that stops on a budget-canceled result must halt the engine
// mid-wave: results after the stopping index are discarded even though
// their jobs already ran.
func TestRunStopsOnBudgetCancellation(t *testing.T) {
	var ran atomic.Int32
	p := Pool{Workers: 4, Wave: 4, Budget: 5 * time.Millisecond}
	committed := 0
	n := Run(p, 1, 8, func(ctx context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 2 {
			<-ctx.Done()
			return 0, ctx.Err()
		}
		return i, nil
	}, func(r Result[int]) bool {
		committed++
		return !errors.Is(r.Err, context.DeadlineExceeded)
	})
	if n != 2 || committed != 2 {
		t.Fatalf("committed %d (counted %d), want stop at index 2", n, committed)
	}
	if r := ran.Load(); r != 4 {
		t.Fatalf("%d jobs ran, want exactly the first wave of 4", r)
	}
}

// Tune is consulted once per wave, before it launches, with the wave
// number and committed count; a positive return becomes the worker cap
// for that wave, non-positive returns keep the previous cap.
func TestRunTuneAdjustsWorkerCap(t *testing.T) {
	var tuneCalls [][2]int
	caps := []int{4, 1, 0, 2} // wave 3's 0 must keep wave 2's cap of 1
	p := Pool{
		Workers: 4, Wave: 3,
		Tune: func(wave, committed int) int {
			tuneCalls = append(tuneCalls, [2]int{wave, committed})
			if wave <= len(caps) {
				return caps[wave-1]
			}
			return 0
		},
	}
	var cur atomic.Int32
	peaks := make([]int32, 5) // per-wave observed peak, indexed by wave
	waveOf := func(i int) int { return (i-1)/3 + 1 }
	Run(p, 1, 12, func(_ context.Context, i int) (struct{}, error) {
		w := waveOf(i)
		c := cur.Add(1)
		for {
			pk := atomic.LoadInt32(&peaks[w])
			if c <= pk || atomic.CompareAndSwapInt32(&peaks[w], pk, c) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
		return struct{}{}, nil
	}, func(Result[struct{}]) bool { return true })

	want := [][2]int{{1, 0}, {2, 3}, {3, 6}, {4, 9}}
	if len(tuneCalls) != len(want) {
		t.Fatalf("tune calls %v, want %v", tuneCalls, want)
	}
	for i := range want {
		if tuneCalls[i] != want[i] {
			t.Fatalf("tune calls %v, want %v", tuneCalls, want)
		}
	}
	// Waves 2, 3 (cap kept at 1), and 4 must respect the tuned caps.
	if peaks[2] > 1 {
		t.Errorf("wave 2 peak %d, want <= 1", peaks[2])
	}
	if peaks[3] > 1 {
		t.Errorf("wave 3 peak %d, want <= 1 (non-positive Tune keeps prior cap)", peaks[3])
	}
	if peaks[4] > 2 {
		t.Errorf("wave 4 peak %d, want <= 2", peaks[4])
	}
}

// With no Tune hook the pool behaves exactly as before; the sched.workers
// gauge reports the static cap.
func TestRunWorkersGauge(t *testing.T) {
	r := obs.New()
	p := Pool{Workers: 3, Wave: 3, Metrics: r}
	Run(p, 1, 6, func(_ context.Context, i int) (int, error) { return i, nil },
		func(Result[int]) bool { return true })
	if g := r.Gauge("sched.workers").Value(); g != 3 {
		t.Fatalf("sched.workers gauge = %v, want 3", g)
	}
}
