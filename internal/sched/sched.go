// Package sched is a small deterministic fan-out engine for detection
// runs: it executes a contiguous range of independent jobs over a bounded
// worker pool in fixed-size waves, then commits each wave's results in
// ascending index order.
//
// The wave/commit split is what makes parallel detection reproducible:
// jobs may finish in any order on any worker, but observable effects
// (plan mutation, first-bug-wins selection) happen only inside commit,
// which sees results exactly as a sequential loop would. A commit
// returning false stops the engine before the next wave — the parallel
// analog of `break`.
//
// The package is generic and self-contained (no core imports), so core
// can depend on it without an import cycle.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"waffle/internal/obs"
)

// ErrDraining is returned by RunCtx when the pool's Lifecycle has begun
// draining: the submission was rejected before any job started.
var ErrDraining = errors.New("sched: pool is draining")

// Lifecycle tracks in-flight Run calls on a shared pool so an owner (e.g.
// a long-running server) can shut the pool down without orphaning workers:
// Drain rejects every subsequent submission and blocks until the calls
// already inside the pool have returned. Attach one Lifecycle to every
// Pool value that shares a worker budget; Pool copies sharing the pointer
// share the lifecycle.
type Lifecycle struct {
	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup
}

// NewLifecycle returns a lifecycle accepting submissions.
func NewLifecycle() *Lifecycle { return &Lifecycle{} }

// begin registers one Run call; it reports false (and registers nothing)
// once draining has started. Nil-safe: a nil lifecycle always admits.
func (l *Lifecycle) begin() bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.draining {
		return false
	}
	l.inflight.Add(1)
	return true
}

// end unregisters one admitted Run call.
func (l *Lifecycle) end() {
	if l != nil {
		l.inflight.Done()
	}
}

// Draining reports whether Drain or Close has been called.
func (l *Lifecycle) Draining() bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.draining
}

// Drain rejects new submissions and blocks until every in-flight Run call
// has returned. Idempotent and safe to call concurrently; every caller
// blocks until the pool is quiet. Drain does not cancel running jobs —
// pass a cancellable context to RunCtx for that and cancel it before (or
// while) draining.
func (l *Lifecycle) Drain() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.draining = true
	l.mu.Unlock()
	l.inflight.Wait()
}

// Close is Drain under the name conventionally paired with resource
// teardown. A drained lifecycle stays closed: submissions are rejected
// forever.
func (l *Lifecycle) Close() { l.Drain() }

// Pool configures a Run.
type Pool struct {
	// Workers bounds concurrently executing jobs. Zero or negative means
	// GOMAXPROCS(0).
	Workers int
	// Wave is the number of jobs launched between commit barriers. Zero or
	// negative means Workers. Larger waves increase speculative work per
	// barrier; smaller waves tighten how far results can run ahead of the
	// committed state.
	Wave int
	// Budget is the per-job wall-clock budget, enforced via the context
	// passed to each job. Zero means no budget.
	Budget time.Duration
	// Metrics receives pool counters (sched.jobs, sched.waves,
	// sched.job_panics). Nil disables them.
	Metrics *obs.Registry
	// Tune, when non-nil, is consulted once before each wave with the
	// 1-based wave number and the count of results committed so far; a
	// positive return becomes the worker cap for that wave (the wave size
	// is unchanged — fewer workers just drain it in more batches).
	// Non-positive returns keep the current cap. This is the adaptive
	// controller's seam for shrinking the pool as targets go quiet: it
	// runs between waves, on the committing goroutine, so it can never
	// race in-flight jobs.
	Tune func(wave, committed int) int
	// Life, when non-nil, attaches this pool to a shared lifecycle: RunCtx
	// registers with it on entry and is rejected with ErrDraining once
	// Drain/Close has been called. Pool values copied with the same Life
	// pointer drain together.
	Life *Lifecycle
	// Shared, when non-nil, is a worker-slot semaphore shared across Pool
	// values (a buffered channel; capacity = the global worker budget).
	// Concurrent Run calls whose pools carry the same channel contend for
	// the same slots, making the worker budget global instead of
	// per-call. Workers still bounds this call's own concurrency (and
	// sets the default wave size). Tune adjusts only the local bound; the
	// shared capacity is fixed at creation.
	Shared chan struct{}
}

// Drain drains the pool's lifecycle (no-op without one): new submissions
// are rejected and the call blocks until in-flight Run calls return.
func (p Pool) Drain() { p.Life.Drain() }

// Close closes the pool's lifecycle (no-op without one).
func (p Pool) Close() { p.Life.Close() }

// Result carries one job's outcome to commit.
type Result[R any] struct {
	Index int
	Value R
	Err   error // job error, budget cancellation, or recovered panic
}

// PanicError wraps a panic recovered from a job so one crashing run is
// reported like any other failed run instead of tearing down the whole
// search.
type PanicError struct {
	Index int    // job index that panicked
	Value any    // the recovered panic value
	Stack []byte // stack at the point of the panic
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: job %d panicked: %v", e.Index, e.Value)
}

func (p Pool) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (p Pool) wave() int {
	if p.Wave > 0 {
		return p.Wave
	}
	return p.workers()
}

// Run executes job for every index in [first, last] and feeds the results
// to commit in ascending index order. Jobs run concurrently (at most
// Pool.Workers at a time) within waves of Pool.Wave indices; commits
// happen between waves, single-threaded, in order. When commit returns
// false no further wave starts and Run returns the number of results
// committed (the current wave's remaining results are discarded — they
// come after the stopping index, exactly like iterations after a
// sequential break). An empty range commits nothing.
func Run[R any](p Pool, first, last int, job func(ctx context.Context, index int) (R, error), commit func(Result[R]) bool) int {
	n, _ := RunCtx(context.Background(), p, first, last, job, commit)
	return n
}

// RunCtx is Run under a caller context. The context gates progress at
// wave granularity and flows into every job (the per-job Budget, if any,
// is layered on top of it): once ctx is done, no further wave launches,
// the results of the wave in flight are DISCARDED — they never reach
// commit, so a journal whose cursor advances only on commit can replay
// them safely after a resume — and RunCtx returns the commits so far with
// ctx's error. When the pool carries a draining Lifecycle the submission
// is rejected up front with ErrDraining and zero commits.
func RunCtx[R any](ctx context.Context, p Pool, first, last int, job func(ctx context.Context, index int) (R, error), commit func(Result[R]) bool) (int, error) {
	if !p.Life.begin() {
		return 0, ErrDraining
	}
	defer p.Life.end()

	committed := 0
	waveLen := p.wave()
	workers := p.workers()
	waves := p.Metrics.Counter("sched.waves")
	workerGauge := p.Metrics.Gauge("sched.workers")
	workerGauge.Set(float64(workers))
	wave := 0
	for lo := first; lo <= last; lo += waveLen {
		if err := ctx.Err(); err != nil {
			return committed, err
		}
		wave++
		if p.Tune != nil {
			if w := p.Tune(wave, committed); w > 0 {
				workers = w
				workerGauge.Set(float64(workers))
			}
		}
		waves.Inc()
		hi := lo + waveLen - 1
		if hi > last {
			hi = last
		}
		results := runWave(ctx, p, workers, lo, hi, job)
		if err := ctx.Err(); err != nil {
			// Cancelled mid-wave: the wave's results are speculative state
			// the cancelled search must not observe. Discard them all — a
			// partial commit here would let "cancel" mean "commit an
			// unpredictable prefix of the wave".
			return committed, err
		}
		for _, r := range results {
			committed++
			if !commit(r) {
				return committed, nil
			}
		}
	}
	return committed, nil
}

// runWave executes jobs lo..hi concurrently, at most workers at a time
// locally (and bounded by the shared semaphore when the pool carries
// one), returning results in index order.
func runWave[R any](ctx context.Context, p Pool, workers, lo, hi int, job func(ctx context.Context, index int) (R, error)) []Result[R] {
	n := hi - lo + 1
	results := make([]Result[R], n)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			index := lo + off
			if !acquire(ctx, sem) {
				results[off] = Result[R]{Index: index, Err: ctx.Err()}
				return
			}
			defer func() { <-sem }()
			if p.Shared != nil {
				// Local slot held, now the global one: holding the local
				// slot first keeps a call from parking more goroutines on
				// the shared channel than its own worker cap allows.
				if !acquire(ctx, p.Shared) {
					results[off] = Result[R]{Index: index, Err: ctx.Err()}
					return
				}
				defer func() { <-p.Shared }()
			}
			results[off] = runJob(ctx, p, index, job)
		}(i)
	}
	wg.Wait()
	return results
}

// acquire takes one slot from sem, giving up when ctx is done first.
func acquire(ctx context.Context, sem chan struct{}) bool {
	select {
	case sem <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

// runJob executes one job under its budget, converting panics into
// PanicError results.
func runJob[R any](ctx context.Context, p Pool, index int, job func(ctx context.Context, index int) (R, error)) (res Result[R]) {
	res.Index = index
	if p.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.Budget)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			stack := make([]byte, 64<<10)
			stack = stack[:runtime.Stack(stack, false)]
			res.Err = &PanicError{Index: index, Value: r, Stack: stack}
			p.Metrics.Counter("sched.job_panics").Inc()
		}
	}()
	p.Metrics.Counter("sched.jobs").Inc()
	res.Value, res.Err = job(ctx, index)
	return res
}
