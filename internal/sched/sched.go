// Package sched is a small deterministic fan-out engine for detection
// runs: it executes a contiguous range of independent jobs over a bounded
// worker pool in fixed-size waves, then commits each wave's results in
// ascending index order.
//
// The wave/commit split is what makes parallel detection reproducible:
// jobs may finish in any order on any worker, but observable effects
// (plan mutation, first-bug-wins selection) happen only inside commit,
// which sees results exactly as a sequential loop would. A commit
// returning false stops the engine before the next wave — the parallel
// analog of `break`.
//
// The package is generic and self-contained (no core imports), so core
// can depend on it without an import cycle.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"waffle/internal/obs"
)

// Pool configures a Run.
type Pool struct {
	// Workers bounds concurrently executing jobs. Zero or negative means
	// GOMAXPROCS(0).
	Workers int
	// Wave is the number of jobs launched between commit barriers. Zero or
	// negative means Workers. Larger waves increase speculative work per
	// barrier; smaller waves tighten how far results can run ahead of the
	// committed state.
	Wave int
	// Budget is the per-job wall-clock budget, enforced via the context
	// passed to each job. Zero means no budget.
	Budget time.Duration
	// Metrics receives pool counters (sched.jobs, sched.waves,
	// sched.job_panics). Nil disables them.
	Metrics *obs.Registry
	// Tune, when non-nil, is consulted once before each wave with the
	// 1-based wave number and the count of results committed so far; a
	// positive return becomes the worker cap for that wave (the wave size
	// is unchanged — fewer workers just drain it in more batches).
	// Non-positive returns keep the current cap. This is the adaptive
	// controller's seam for shrinking the pool as targets go quiet: it
	// runs between waves, on the committing goroutine, so it can never
	// race in-flight jobs.
	Tune func(wave, committed int) int
}

// Result carries one job's outcome to commit.
type Result[R any] struct {
	Index int
	Value R
	Err   error // job error, budget cancellation, or recovered panic
}

// PanicError wraps a panic recovered from a job so one crashing run is
// reported like any other failed run instead of tearing down the whole
// search.
type PanicError struct {
	Index int    // job index that panicked
	Value any    // the recovered panic value
	Stack []byte // stack at the point of the panic
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: job %d panicked: %v", e.Index, e.Value)
}

func (p Pool) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (p Pool) wave() int {
	if p.Wave > 0 {
		return p.Wave
	}
	return p.workers()
}

// Run executes job for every index in [first, last] and feeds the results
// to commit in ascending index order. Jobs run concurrently (at most
// Pool.Workers at a time) within waves of Pool.Wave indices; commits
// happen between waves, single-threaded, in order. When commit returns
// false no further wave starts and Run returns the number of results
// committed (the current wave's remaining results are discarded — they
// come after the stopping index, exactly like iterations after a
// sequential break). An empty range commits nothing.
func Run[R any](p Pool, first, last int, job func(ctx context.Context, index int) (R, error), commit func(Result[R]) bool) int {
	committed := 0
	waveLen := p.wave()
	workers := p.workers()
	waves := p.Metrics.Counter("sched.waves")
	workerGauge := p.Metrics.Gauge("sched.workers")
	workerGauge.Set(float64(workers))
	wave := 0
	for lo := first; lo <= last; lo += waveLen {
		wave++
		if p.Tune != nil {
			if w := p.Tune(wave, committed); w > 0 {
				workers = w
				workerGauge.Set(float64(workers))
			}
		}
		waves.Inc()
		hi := lo + waveLen - 1
		if hi > last {
			hi = last
		}
		results := runWave(p, workers, lo, hi, job)
		for _, r := range results {
			committed++
			if !commit(r) {
				return committed
			}
		}
	}
	return committed
}

// runWave executes jobs lo..hi concurrently, at most workers at a time,
// and returns their results in index order.
func runWave[R any](p Pool, workers, lo, hi int, job func(ctx context.Context, index int) (R, error)) []Result[R] {
	n := hi - lo + 1
	results := make([]Result[R], n)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[off] = runJob(p, lo+off, job)
		}(i)
	}
	wg.Wait()
	return results
}

// runJob executes one job under its budget, converting panics into
// PanicError results.
func runJob[R any](p Pool, index int, job func(ctx context.Context, index int) (R, error)) (res Result[R]) {
	res.Index = index
	ctx := context.Background()
	if p.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.Budget)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			stack := make([]byte, 64<<10)
			stack = stack[:runtime.Stack(stack, false)]
			res.Err = &PanicError{Index: index, Value: r, Stack: stack}
			p.Metrics.Counter("sched.job_panics").Inc()
		}
	}()
	p.Metrics.Counter("sched.jobs").Inc()
	res.Value, res.Err = job(ctx, index)
	return res
}
