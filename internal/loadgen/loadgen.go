// Package loadgen is a deterministic-seeded HTTP load emulator: the
// synthetic user population that drives the always-on live monitor in
// the load-smoke experiment. Given a seed, the full request plan — which
// path each request hits, in which order — is fixed before the first
// request is issued, so two campaigns with the same seed exercise the
// same traffic mix even though wall-clock scheduling differs.
//
// The generator supports two driving modes. With no Stages, workers
// issue requests back-to-back as fast as the service answers (closed
// loop, Concurrency outstanding). With Stages, a pacer releases requests
// at each stage's RPS for its duration (open loop with a concurrency
// cap), which is how ramp profiles — warm-up, plateau, spike — are
// expressed.
package loadgen

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"waffle/internal/obs"
)

// Stage is one segment of an RPS ramp: issue at RPS for Duration.
type Stage struct {
	RPS      float64
	Duration time.Duration
}

// PathWeight weights one request path in the traffic mix.
type PathWeight struct {
	Path   string
	Weight int
}

// Options configures one load campaign.
type Options struct {
	// Seed fixes the request plan (the path sequence). Same seed, same
	// Mix, same Requests → identical plan.
	Seed int64

	// Requests is the total request count. Zero with Stages set derives
	// the total from the ramp (sum of RPS×Duration per stage).
	Requests int

	// Concurrency is the number of worker goroutines (default 4). In
	// closed-loop mode it is the number of outstanding requests; in paced
	// mode it caps how many released requests can be in flight.
	Concurrency int

	// Stages, when non-empty, paces the campaign as an RPS ramp instead
	// of the closed loop.
	Stages []Stage

	// Mix is the weighted path mix; empty means every request hits "/".
	Mix []PathWeight

	// Timeout bounds each request (default 10s).
	Timeout time.Duration

	// Metrics, when non-nil, receives loadgen.requests / loadgen.errors
	// counters and the loadgen.latency_us histogram.
	Metrics *obs.Registry

	// Hook, when non-nil, is called after every completed request with
	// the number of requests completed so far (1-based, monotonic). It is
	// called from worker goroutines under a mutex — completions are
	// serialized through it — so it may drive mid-load control actions
	// (e.g. POST /v1/live/stop at N/3) without its own locking.
	Hook func(completed int)
}

// Report summarizes a finished campaign.
type Report struct {
	Requests int            // completed requests
	Errors   int            // transport failures and non-2xx responses
	ByPath   map[string]int // completed requests per path
	P50      time.Duration  // latency quantiles over completed requests
	P99      time.Duration
	Max      time.Duration
	Elapsed  time.Duration // wall time of the whole campaign
}

func (o Options) withDefaults() Options {
	if o.Concurrency <= 0 {
		o.Concurrency = 4
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if len(o.Mix) == 0 {
		o.Mix = []PathWeight{{Path: "/", Weight: 1}}
	}
	return o
}

// plan builds the deterministic path sequence: one weighted draw per
// request from a rand.Rand seeded with Options.Seed. The plan depends
// only on (Seed, Mix, total) — never on scheduling.
func plan(seed int64, mix []PathWeight, total int) ([]string, error) {
	weightSum := 0
	for _, pw := range mix {
		if pw.Weight < 0 {
			return nil, fmt.Errorf("loadgen: negative weight %d for %q", pw.Weight, pw.Path)
		}
		weightSum += pw.Weight
	}
	if weightSum == 0 {
		return nil, errors.New("loadgen: mix has zero total weight")
	}
	rng := rand.New(rand.NewSource(seed))
	paths := make([]string, total)
	for i := range paths {
		draw := rng.Intn(weightSum)
		for _, pw := range mix {
			if draw < pw.Weight {
				paths[i] = pw.Path
				break
			}
			draw -= pw.Weight
		}
	}
	return paths, nil
}

// total resolves the campaign's request count from Requests and Stages.
func (o Options) total() (int, error) {
	if o.Requests > 0 {
		return o.Requests, nil
	}
	if len(o.Stages) == 0 {
		return 0, errors.New("loadgen: need Requests > 0 or at least one Stage")
	}
	n := 0
	for _, s := range o.Stages {
		if s.RPS <= 0 || s.Duration <= 0 {
			return 0, fmt.Errorf("loadgen: stage %+v needs positive RPS and Duration", s)
		}
		n += int(s.RPS * s.Duration.Seconds())
	}
	if n == 0 {
		return 0, errors.New("loadgen: ramp releases zero requests")
	}
	return n, nil
}

// Run drives the campaign against baseURL (no trailing slash) and blocks
// until every planned request has completed.
func Run(baseURL string, opts Options) (Report, error) {
	opts = opts.withDefaults()
	total, err := opts.total()
	if err != nil {
		return Report{}, err
	}
	paths, err := plan(opts.Seed, opts.Mix, total)
	if err != nil {
		return Report{}, err
	}

	reqCtr := opts.Metrics.Counter("loadgen.requests")
	errCtr := opts.Metrics.Counter("loadgen.errors")
	latHist := opts.Metrics.Histogram("loadgen.latency_us", obs.LatencyBuckets)

	client := &http.Client{Timeout: opts.Timeout}
	latencies := make([]time.Duration, total) // one slot per request, no contention
	var errCount, done atomic.Int64
	byPath := make(map[string]int, len(opts.Mix))
	var pathMu sync.Mutex
	var hookMu sync.Mutex

	// In paced mode the pacer feeds request indices through tokens at the
	// ramp's rate; in closed-loop mode workers claim indices directly
	// from next.
	var next atomic.Int64
	var tokens chan int
	if len(opts.Stages) > 0 {
		tokens = make(chan int)
		go func() {
			defer close(tokens)
			idx := 0
			for _, st := range opts.Stages {
				interval := time.Duration(float64(time.Second) / st.RPS)
				n := int(st.RPS * st.Duration.Seconds())
				for i := 0; i < n && idx < total; i++ {
					tokens <- idx
					idx++
					time.Sleep(interval)
				}
			}
			// Requests > ramp capacity: release the remainder unpaced so
			// the campaign always completes exactly `total` requests.
			for ; idx < total; idx++ {
				tokens <- idx
			}
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var idx int
				if tokens != nil {
					i, ok := <-tokens
					if !ok {
						return
					}
					idx = i
				} else {
					idx = int(next.Add(1)) - 1
					if idx >= total {
						return
					}
				}
				path := paths[idx]
				t0 := time.Now()
				resp, err := client.Get(baseURL + path)
				lat := time.Since(t0)
				if err != nil {
					errCount.Add(1)
					errCtr.Inc()
				} else {
					if resp.StatusCode < 200 || resp.StatusCode > 299 {
						errCount.Add(1)
						errCtr.Inc()
					}
					resp.Body.Close()
				}
				latencies[idx] = lat
				reqCtr.Inc()
				latHist.Observe(lat.Microseconds())
				pathMu.Lock()
				byPath[path]++
				pathMu.Unlock()
				n := int(done.Add(1))
				if opts.Hook != nil {
					hookMu.Lock()
					opts.Hook(n)
					hookMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sorted := make([]time.Duration, len(latencies))
	copy(sorted, latencies)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	q := func(p float64) time.Duration {
		if len(sorted) == 0 {
			return 0
		}
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return Report{
		Requests: total,
		Errors:   int(errCount.Load()),
		ByPath:   byPath,
		P50:      q(0.50),
		P99:      q(0.99),
		Max:      sorted[len(sorted)-1],
		Elapsed:  elapsed,
	}, nil
}
