package loadgen

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"waffle/internal/obs"
)

func countingServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if r.URL.Path == "/fail" {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &hits
}

func TestPlanDeterministicAcrossRuns(t *testing.T) {
	ts, _ := countingServer(t)
	opts := Options{
		Seed: 42, Requests: 200, Concurrency: 8,
		Mix: []PathWeight{{"/browse", 3}, {"/checkout", 1}},
	}
	a, err := Run(ts.URL, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ts.URL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.ByPath, b.ByPath) {
		t.Fatalf("same seed, different mix: %v vs %v", a.ByPath, b.ByPath)
	}
	if a.ByPath["/browse"]+a.ByPath["/checkout"] != 200 {
		t.Fatalf("requests lost: %v", a.ByPath)
	}
	// 3:1 weights: /browse should dominate by a wide margin.
	if a.ByPath["/browse"] <= a.ByPath["/checkout"] {
		t.Fatalf("mix weights ignored: %v", a.ByPath)
	}
	if a.Errors != 0 {
		t.Fatalf("unexpected errors: %d", a.Errors)
	}
	if a.P99 < a.P50 || a.Max < a.P99 {
		t.Fatalf("quantiles unordered: p50=%v p99=%v max=%v", a.P50, a.P99, a.Max)
	}
}

func TestErrorsCountedAndMetricsRecorded(t *testing.T) {
	ts, _ := countingServer(t)
	m := obs.New()
	rep, err := Run(ts.URL, Options{
		Seed: 1, Requests: 50, Concurrency: 4,
		Mix:     []PathWeight{{"/ok", 1}, {"/fail", 1}},
		Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != rep.ByPath["/fail"] {
		t.Fatalf("errors %d != /fail hits %d", rep.Errors, rep.ByPath["/fail"])
	}
	snap := m.Snapshot()
	if got := snap.Counters["loadgen.requests"]; got != 50 {
		t.Fatalf("loadgen.requests = %d, want 50", got)
	}
	if got := snap.Counters["loadgen.errors"]; got != int64(rep.Errors) {
		t.Fatalf("loadgen.errors = %d, want %d", got, rep.Errors)
	}
	if q, ok := snap.HistogramQuantile("loadgen.latency_us", 50); !ok || q < 0 {
		t.Fatalf("latency histogram missing: %v %v", q, ok)
	}
}

func TestHookSeesMonotonicCompletions(t *testing.T) {
	ts, _ := countingServer(t)
	last := 0
	rep, err := Run(ts.URL, Options{
		Seed: 9, Requests: 80, Concurrency: 8,
		Hook: func(n int) {
			if n != last+1 {
				t.Errorf("hook skipped: %d after %d", n, last)
			}
			last = n
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != rep.Requests {
		t.Fatalf("hook saw %d completions, report says %d", last, rep.Requests)
	}
}

func TestStagedRampPacesAndCompletes(t *testing.T) {
	ts, hits := countingServer(t)
	start := time.Now()
	rep, err := Run(ts.URL, Options{
		Seed: 3, Concurrency: 4,
		Stages: []Stage{
			{RPS: 200, Duration: 100 * time.Millisecond},
			{RPS: 400, Duration: 100 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	want := 200/10 + 400/10 // RPS × 0.1s per stage
	if rep.Requests != want || int(hits.Load()) != want {
		t.Fatalf("requests = %d (server saw %d), want %d", rep.Requests, hits.Load(), want)
	}
	// The ramp spans 200ms of pacing; the campaign cannot finish
	// instantly like the closed loop would.
	if elapsed < 150*time.Millisecond {
		t.Fatalf("paced campaign finished in %v — pacing not applied", elapsed)
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := Run("http://127.0.0.1:0", Options{}); err == nil {
		t.Fatal("no Requests and no Stages accepted")
	}
	if _, err := Run("http://127.0.0.1:0", Options{Requests: 1, Mix: []PathWeight{{"/a", 0}}}); err == nil {
		t.Fatal("zero-weight mix accepted")
	}
	if _, err := Run("http://127.0.0.1:0", Options{Requests: 1, Mix: []PathWeight{{"/a", -1}}}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := Run("http://127.0.0.1:0", Options{Stages: []Stage{{RPS: -1, Duration: time.Second}}}); err == nil {
		t.Fatal("negative RPS accepted")
	}
}
