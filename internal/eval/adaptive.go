package eval

import (
	"fmt"
	"sort"

	"waffle/internal/control"
	"waffle/internal/obs"
)

// AdaptiveArm summarizes one arm of the adaptive-vs-fixed comparison.
type AdaptiveArm struct {
	// TotalRuns sums every run every tool consumed across the corpus,
	// armed and disarmed sessions included.
	TotalRuns int `json:"total_runs"`
	// Exposed counts (bug, tool) exposures across the corpus.
	Exposed int `json:"exposed"`
	// Violations carries the arm's oracle breaches (must be empty).
	Violations int               `json:"violations"`
	Tools      []ToolDiffSummary `json:"tools"`
}

// AdaptiveReport is the payload of BENCH_adaptive.json: the same corpus
// swept twice — once fixed, once under the adaptive campaign controller —
// with the parity and savings verdicts the CI smoke gates on.
//
// The adaptive arm is not bit-deterministic: budget caps and pool sizes
// depend on which sessions finished first across worker goroutines, so
// two adaptive sweeps can differ in runs saved (never in violations —
// the zero-false-positive oracle applies unchanged). The report asserts
// parity and savings, not reproducibility.
type AdaptiveReport struct {
	Seed     int64       `json:"seed"`
	Programs int         `json:"programs"`
	MaxRuns  int         `json:"max_runs"`
	Fixed    AdaptiveArm `json:"fixed"`
	Adaptive AdaptiveArm `json:"adaptive"`
	// RunsSaved = Fixed.TotalRuns − Adaptive.TotalRuns. The acceptance
	// gate requires it strictly positive.
	RunsSaved int `json:"runs_saved"`
	// Parity reports that, per tool, the adaptive arm exposed every
	// (program, bug) the fixed arm exposed. Lost exposures are itemized
	// in Violations.
	Parity bool `json:"parity"`
	// Violations aggregates oracle breaches from both arms plus any
	// exposure-parity losses.
	Violations []string `json:"violations,omitempty"`
	// Retunes and Targets record what the controller actually did: every
	// decision event and each target's final parameters.
	Retunes []control.RetuneEvent `json:"retunes"`
	Targets []control.TargetState `json:"targets"`
	// Metrics is the controller's campaign snapshot (per-tool
	// runs-to-exposure histograms, delay overhead, decision counters) —
	// schema-validated by -validate-metrics like every BENCH artifact.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// exposedSet collects a report's per-tool exposed (program, bug) keys.
func exposedSet(r *DiffReport) map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	for _, pd := range r.Results {
		for _, oc := range pd.Outcomes {
			if oc.Runs <= 0 {
				continue
			}
			if out[oc.Tool] == nil {
				out[oc.Tool] = make(map[string]bool)
			}
			out[oc.Tool][fmt.Sprintf("%s/bug%d", pd.Program, oc.Bug)] = true
		}
	}
	return out
}

// RunAdaptiveComparison sweeps the same corpus twice — fixed, then under
// a fresh adaptive controller configured by ctrlCfg — and reports parity
// (the adaptive arm exposes a superset of the fixed arm's bugs, per
// tool) and run savings. o.Controller is overridden per arm; every other
// option (seed, corpus, budgets) is shared, so both arms search the
// identical program set.
func RunAdaptiveComparison(o DiffOptions, ctrlCfg control.Config) *AdaptiveReport {
	o = o.withDefaults()

	fo := o
	fo.Controller = nil
	fixed := RunDifferential(fo)

	ctrl := control.New(ctrlCfg)
	ao := o
	ao.Controller = ctrl
	adaptive := RunDifferential(ao)

	rep := &AdaptiveReport{
		Seed: o.Seed, Programs: o.Programs, MaxRuns: o.MaxRuns,
		Fixed:    summarizeArm(fixed),
		Adaptive: summarizeArm(adaptive),
		Parity:   true,
		Retunes:  ctrl.Events(),
		Targets:  ctrl.Targets(),
		Metrics:  ctrl.CampaignSnapshot(),
	}
	rep.RunsSaved = rep.Fixed.TotalRuns - rep.Adaptive.TotalRuns
	rep.Violations = append(rep.Violations, fixed.Violations...)
	rep.Violations = append(rep.Violations, adaptive.Violations...)

	fixedExp, adaptExp := exposedSet(fixed), exposedSet(adaptive)
	var lost []string
	for tool, keys := range fixedExp {
		for key := range keys {
			if !adaptExp[tool][key] {
				lost = append(lost, fmt.Sprintf("parity: %s lost exposure %s under adaptive control", tool, key))
			}
		}
	}
	sort.Strings(lost)
	if len(lost) > 0 {
		rep.Parity = false
		rep.Violations = append(rep.Violations, lost...)
	}
	return rep
}

func summarizeArm(r *DiffReport) AdaptiveArm {
	arm := AdaptiveArm{Tools: r.Tools, Violations: len(r.Violations)}
	for _, t := range r.Tools {
		arm.TotalRuns += t.TotalRuns
		arm.Exposed += t.Exposed
	}
	return arm
}
