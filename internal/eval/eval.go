// Package eval computes the paper's evaluation artifacts — every table and
// figure of §6 plus the §3.3 measurements — from the synthetic benchmark
// suite. cmd/waffle-bench and the repository's bench harness are thin
// frontends over this package; EXPERIMENTS.md records its output against
// the paper's numbers.
package eval

import (
	"context"

	"waffle/internal/apps"
	"waffle/internal/core"
	"waffle/internal/obs"
	"waffle/internal/sched"
	"waffle/internal/sim"
	"waffle/internal/stats"
	"waffle/internal/trace"
	"waffle/internal/tsvd"
	"waffle/internal/wafflebasic"
)

// SuiteRow aggregates one application's full-test-suite measurements: the
// per-app rows of Tables 2, 5, and 6 and the §3.3 overlap statistics, all
// computed in a single pass over the app's tests.
type SuiteRow struct {
	App      string
	Tests    int
	InTable2 bool

	// Table 2: average unique static sites per test input.
	TSVInstrSites float64
	TSVInjSites   float64
	MOInstrSites  float64
	MOInjSites    float64

	// Table 5: average base time and overhead percentages.
	BaseMS        float64
	BasicR1Pct    float64 // WaffleBasic run #1 overhead %
	BasicR2Pct    float64 // WaffleBasic run #2 overhead %
	WaffleR1Pct   float64 // Waffle preparation run overhead %
	WaffleR2Pct   float64 // Waffle first detection run overhead %
	BasicTimeouts int     // runs that hit the test timeout under WaffleBasic
	BasicTimedOut bool    // majority of tests timed out (Table 5 "TimeOut")

	// Table 6: cumulative delay count and duration over one detection run
	// per input (WaffleBasic run #2 / Waffle run #2).
	BasicDelays      int
	BasicDelayDurMS  float64
	WaffleDelays     int
	WaffleDelayDurMS float64

	// §3.3: average delay-overlap ratio across test inputs, for the
	// MemOrder tool (WaffleBasic) and for TSVD.
	BasicOverlap float64
	TSVDOverlap  float64
}

// SuiteOptions bounds a suite evaluation.
type SuiteOptions struct {
	Seed     int64
	MaxTests int // 0 = all tests
	// Parallelism runs that many tests concurrently (each test's worlds
	// are fully independent). 0 = GOMAXPROCS.
	Parallelism int
	// AnalyzeWorkers shards each test's trace analysis across this many
	// workers; the plans are bit-identical to sequential analysis.
	AnalyzeWorkers int
	// Metrics receives engine and pool counters from every tool the suite
	// drives. Nil disables instrumentation. Measurements are unchanged
	// either way (instruments only observe).
	Metrics *obs.Registry
}

// testResult carries one test's measurements out of the worker pool.
type testResult struct {
	base                          sim.Duration
	tsvInstr, tsvInj              float64
	moInstr, moInj                float64
	basicR1, basicR2              float64
	basicR1OK, basicR2OK          bool
	basicTimeouts                 int
	basicDelays, waffleDelays     int
	basicDelayDur, waffleDelayDur float64
	wr1, wr2                      float64
	basicOverlap, tsvdOverlap     float64
	basicOverlapOK, tsvdOverlapOK bool
}

// EvalSuite measures one application's whole test suite. Tests are
// evaluated concurrently: every run builds its own world and heap, so the
// only shared state is the result slice.
func EvalSuite(app *apps.App, opt SuiteOptions) SuiteRow {
	row := SuiteRow{App: app.Name, InTable2: app.InTable2}
	tests := app.Tests
	if opt.MaxTests > 0 && len(tests) > opt.MaxTests {
		tests = tests[:opt.MaxTests]
	}
	row.Tests = len(tests)

	// Fan the per-test measurements over the shared run orchestrator: each
	// test's worlds are fully independent, and the ordered commit keeps the
	// result slice (and thus every float accumulation below) in the same
	// order as a sequential loop.
	results := make([]testResult, len(tests))
	sched.Run(sched.Pool{Workers: opt.Parallelism, Metrics: opt.Metrics},
		0, len(tests)-1,
		func(_ context.Context, i int) (testResult, error) {
			return evalOneTest(tests[i], opt.Seed+int64(i)*101, opt.AnalyzeWorkers, opt.Metrics), nil
		},
		func(r sched.Result[testResult]) bool {
			results[r.Index] = r.Value
			return true
		})

	var (
		sumTSVInstr, sumTSVInj  float64
		sumMOInstr, sumMOInj    float64
		sumBase                 sim.Duration
		sumBasicR1, sumBasicR2  float64
		nBasicR1, nBasicR2      int
		sumWR1, sumWR2          float64
		basicOverlaps, tsvdOvls []float64
	)
	for _, r := range results {
		if r.base <= 0 {
			continue
		}
		sumBase += r.base
		sumTSVInstr += r.tsvInstr
		sumTSVInj += r.tsvInj
		sumMOInstr += r.moInstr
		sumMOInj += r.moInj
		if r.basicR1OK {
			sumBasicR1 += r.basicR1
			nBasicR1++
		}
		if r.basicR2OK {
			sumBasicR2 += r.basicR2
			nBasicR2++
		}
		row.BasicTimeouts += r.basicTimeouts
		row.BasicDelays += r.basicDelays
		row.BasicDelayDurMS += r.basicDelayDur
		row.WaffleDelays += r.waffleDelays
		row.WaffleDelayDurMS += r.waffleDelayDur
		sumWR1 += r.wr1
		sumWR2 += r.wr2
		if r.basicOverlapOK {
			basicOverlaps = append(basicOverlaps, r.basicOverlap)
		}
		if r.tsvdOverlapOK {
			tsvdOvls = append(tsvdOvls, r.tsvdOverlap)
		}
	}

	n := float64(len(tests))
	if n == 0 {
		return row
	}
	row.TSVInstrSites = sumTSVInstr / n
	row.TSVInjSites = sumTSVInj / n
	row.MOInstrSites = sumMOInstr / n
	row.MOInjSites = sumMOInj / n
	row.BaseMS = sumBase.Milliseconds() / n
	if nBasicR1 > 0 {
		row.BasicR1Pct = sumBasicR1 / float64(nBasicR1)
	}
	if nBasicR2 > 0 {
		row.BasicR2Pct = sumBasicR2 / float64(nBasicR2)
	}
	row.BasicTimedOut = row.BasicTimeouts*2 > len(tests)
	row.WaffleR1Pct = sumWR1 / n
	row.WaffleR2Pct = sumWR2 / n
	row.BasicOverlap = stats.Mean(basicOverlaps)
	row.TSVDOverlap = stats.Mean(tsvdOvls)
	return row
}

// evalOneTest performs every per-test measurement: base runs, one TSVD
// run, two WaffleBasic runs, and Waffle's preparation + first detection.
func evalOneTest(test *apps.Test, seed int64, analyzeWorkers int, metrics *obs.Registry) testResult {
	var r testResult
	base := test.Prog.Execute(seed, nil)
	r.base = sim.Duration(base.End)
	if r.base <= 0 {
		return r
	}
	// Overheads for second runs compare against a base run under the same
	// seed, so jitter draws cancel instead of polluting the percentage.
	base2 := sim.Duration(test.Prog.Execute(seed+1, nil).End)
	if base2 <= 0 {
		base2 = r.base
	}

	// TSVD: one identification+injection run over API sites.
	tv := tsvd.New(tsvd.Options{})
	tv.BeginRun()
	test.Prog.Execute(seed, tv)
	r.tsvInstr = float64(tv.InstrumentationSiteCount())
	r.tsvInj = float64(tv.InjectionSiteCount())
	if ivs := tv.Stats().Intervals; len(ivs) > 0 {
		r.tsvdOverlap = stats.OverlapRatio(ivs)
		r.tsvdOverlapOK = true
	}

	// WaffleBasic: identification run then detection run.
	wb := wafflebasic.New(core.Options{Metrics: metrics})
	b1 := runTool(test.Prog, wb, 1, nil, seed)
	if b1.TimedOut {
		r.basicTimeouts++
	} else {
		r.basicR1 = pct(b1.End, r.base)
		r.basicR1OK = true
	}
	b2 := runTool(test.Prog, wb, 2, &b1, seed+1)
	if b2.TimedOut {
		r.basicTimeouts++
	} else {
		r.basicR2 = pct(b2.End, base2)
		r.basicR2OK = true
	}
	r.basicDelays = b2.Stats.Count
	r.basicDelayDur = b2.Stats.Total.Milliseconds()
	if ivs := b2.Stats.Intervals; len(ivs) > 0 {
		r.basicOverlap = stats.OverlapRatio(ivs)
		r.basicOverlapOK = true
	}

	// Waffle: preparation run then first detection run.
	wf := core.NewWaffle(core.Options{AnalyzeWorkers: analyzeWorkers, Metrics: metrics})
	wf.SetLabel(test.Name)
	p1 := runTool(test.Prog, wf, 1, nil, seed)
	r.wr1 = pct(p1.End, r.base)
	p2 := runTool(test.Prog, wf, 2, &p1, seed+1)
	r.wr2 = pct(p2.End, base2)
	r.waffleDelays = p2.Stats.Count
	r.waffleDelayDur = p2.Stats.Total.Milliseconds()
	if tr := wf.PrepTrace(); tr != nil {
		// MO instrumentation sites come from the preparation trace; MO
		// injection sites are the delay sites of the unpruned
		// (WaffleBasic-style) candidate set over the same delay-free
		// trace — same-run injection hides candidates behind its own
		// delays (§4.2), so the unperturbed count is the meaningful
		// density measure.
		r.moInstr = float64(len(moSitesOf(wf)))
		unpruned := core.Analyze(tr, core.Options{DisableParentChild: true, AnalyzeWorkers: analyzeWorkers})
		r.moInj = float64(len(unpruned.InjectionSites()))
	}
	return r
}

// moSitesOf extracts the distinct MemOrder instrumentation sites from the
// Waffle tool's recorded preparation trace.
func moSitesOf(wf *core.Waffle) map[trace.SiteID]bool {
	sites := make(map[trace.SiteID]bool)
	tr := wf.PrepTrace()
	if tr == nil {
		return sites
	}
	for _, e := range tr.Events {
		if e.Kind.IsMemOrder() {
			sites[e.Site] = true
		}
	}
	return sites
}

// runTool performs one run of prog under tool (which may keep cross-run
// state), returning the run report.
func runTool(prog core.Program, tool core.Tool, run int, prev *core.RunReport, seed int64) core.RunReport {
	hook := tool.HookForRun(run, prev)
	res := prog.Execute(seed, hook)
	return core.RunReport{
		Run: run, Seed: seed, End: res.End,
		TimedOut: res.TimedOut, Fault: res.Fault, Stats: tool.RunStats(),
	}
}

// pct converts an instrumented end time into an overhead percentage.
func pct(end sim.Time, base sim.Duration) float64 {
	return (float64(end)/float64(base) - 1) * 100
}
