package eval

import (
	"testing"

	"waffle/internal/apps"
)

func TestEvalSuiteSmallSample(t *testing.T) {
	row := EvalSuite(apps.ByName("NSubstitute"), SuiteOptions{Seed: 1, MaxTests: 4})
	if row.Tests != 4 {
		t.Fatalf("tests = %d", row.Tests)
	}
	if row.BaseMS <= 0 {
		t.Fatal("no base time")
	}
	if row.MOInstrSites <= 0 || row.TSVInstrSites <= 0 {
		t.Fatalf("site counts: MO=%v TSV=%v", row.MOInstrSites, row.TSVInstrSites)
	}
	if row.MOInstrSites <= row.MOInjSites {
		t.Fatalf("injection sites (%v) not a subset of instrumentation sites (%v)",
			row.MOInjSites, row.MOInstrSites)
	}
	// Instrumented runs must cost something.
	if row.WaffleR1Pct <= 0 {
		t.Fatalf("prep overhead = %v%%", row.WaffleR1Pct)
	}
}

func TestEvalSuiteBasicSlowerThanWaffleDetection(t *testing.T) {
	// The headline Table 5 shape on a dense app: WaffleBasic's detection
	// run costs far more than Waffle's.
	row := EvalSuite(apps.ByName("NpgSQL"), SuiteOptions{Seed: 1, MaxTests: 5})
	if row.BasicTimedOut {
		t.Skip("sampled tests timed out under Basic")
	}
	if row.BasicR2Pct <= row.WaffleR2Pct {
		t.Fatalf("Basic R2 %.0f%% not above Waffle R2 %.0f%%", row.BasicR2Pct, row.WaffleR2Pct)
	}
	if row.BasicDelayDurMS <= row.WaffleDelayDurMS {
		t.Fatalf("Basic delay duration %.0f not above Waffle's %.0f",
			row.BasicDelayDurMS, row.WaffleDelayDurMS)
	}
}

func TestEvalBugRow(t *testing.T) {
	var target *apps.Test
	for _, b := range apps.AllBugs() {
		if b.Bug.ID == "Bug-2" {
			target = b
		}
	}
	row := EvalBug(target, BugOptions{Seed: 1, Repetitions: 5, MaxRuns: 10, Majority: 3})
	if row.WaffleRuns != 2 {
		t.Fatalf("Waffle runs = %d, want 2", row.WaffleRuns)
	}
	if row.BasicRuns != 2 {
		t.Fatalf("Basic runs = %d, want 2", row.BasicRuns)
	}
	if row.WaffleSlowdown <= 1 {
		t.Fatalf("slowdown = %v", row.WaffleSlowdown)
	}
	if row.BaseMS <= 0 {
		t.Fatal("no base time")
	}
}

func TestEvalBugMissedReportsZero(t *testing.T) {
	var target *apps.Test
	for _, b := range apps.AllBugs() {
		if b.Bug.ID == "Bug-10" {
			target = b
		}
	}
	row := EvalBug(target, BugOptions{Seed: 1, Repetitions: 5, MaxRuns: 15, Majority: 3})
	if row.BasicRuns != 0 {
		t.Fatalf("Basic runs = %d for the Figure 4a bug, want miss", row.BasicRuns)
	}
	if row.WaffleRuns != 2 {
		t.Fatalf("Waffle runs = %d, want 2", row.WaffleRuns)
	}
}

func TestFigure2ShapeRangeVsThreshold(t *testing.T) {
	points := EvalFigure2(Fig2Options{Seed: 1, Reps: 12})
	var tsvPeak, moAtEnd float64
	tsvLate := 0.0
	for _, p := range points {
		if p.TSVRate > tsvPeak {
			tsvPeak = p.TSVRate
		}
		if p.DelayMS >= 50 {
			tsvLate += p.TSVRate
			moAtEnd = p.MemOrdRate
		}
	}
	if tsvPeak < 0.9 {
		t.Fatalf("TSV never triggered reliably (peak %.2f)", tsvPeak)
	}
	if tsvLate > 0.3 {
		t.Fatalf("TSV still triggering at long delays (range condition violated): %v", tsvLate)
	}
	if moAtEnd < 0.9 {
		t.Fatalf("MemOrder rate at long delays = %.2f, want ≈1 (threshold condition)", moAtEnd)
	}
	// MemOrder rate must be monotonically non-decreasing in delay length.
	prev := -1.0
	for _, p := range points {
		if p.MemOrdRate+0.15 < prev { // small statistical slack
			t.Fatalf("MemOrder rate regressed at %vms: %v after %v", p.DelayMS, p.MemOrdRate, prev)
		}
		if p.MemOrdRate > prev {
			prev = p.MemOrdRate
		}
	}
}

func TestTable1Matrix(t *testing.T) {
	rows := Table1()
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	for _, r := range rows {
		for _, tool := range Table1Tools {
			if r.Values[tool] == "" {
				t.Fatalf("row %q missing cell for %s", r.Decision, tool)
			}
		}
	}
	// Spot-check the cells that define the design-space story.
	for _, r := range rows {
		switch r.Decision {
		case "Identify during delay injection runs?":
			if r.Values["Tsvd"] != "yes" || r.Values["Waffle"] != "no" {
				t.Fatal("Table 1 identify-when cells wrong")
			}
		case "Avoid delay interference?":
			if r.Values["Waffle"] != "yes" || r.Values["Tsvd"] != "no" {
				t.Fatal("Table 1 interference cells wrong")
			}
		}
	}
}

func TestEvalTable7SmallSample(t *testing.T) {
	rows := EvalTable7(BugOptions{Seed: 1, Repetitions: 3, MaxRuns: 12, Majority: 2, MaxTests: 3})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Slowdown <= 0 {
			t.Fatalf("%s: no slowdown measured", r.Name)
		}
	}
	// The parent-child ablation must cost extra suite-wide detection time.
	if rows[0].Slowdown <= 1.0 {
		t.Errorf("no parent-child analysis slowdown = %.2f, want > 1", rows[0].Slowdown)
	}
}
