package eval

import (
	"waffle/internal/memmodel"
	"waffle/internal/sim"
	"waffle/internal/trace"
)

// Figure 2: the two fundamentally different timing conditions. For a
// thread-safety violation, the injected delay must land API call 1's
// execution window inside call 2's — a *range* of effective delays
// (T4−T1 > delay > T3−T2). For a MemOrder bug, the delay must push the
// operation past its partner — a *threshold* (delay > T4−T1). The figure
// sweeps one injected delay length and plots each bug's trigger rate.

// Fig2Point is the trigger probability of both bug shapes at one delay.
type Fig2Point struct {
	DelayMS    float64
	TSVRate    float64 // thread-safety violation triggered
	MemOrdRate float64 // MemOrder bug triggered
}

// Fig2Options parameterizes the sweep. The underlying scenario places API
// call 2 (window WindowMS) GapMS after API call 1, and a disposal GapMS
// after an object use; the sweep injects a fixed delay before call 1 /
// before the use.
type Fig2Options struct {
	Seed     int64
	Reps     int     // seeds per point (0 = 40)
	GapMS    float64 // natural distance between the operations (0 = 20ms)
	WinMS    float64 // API call execution window (0 = 8ms)
	DelaysMS []float64
}

func (o Fig2Options) withDefaults() Fig2Options {
	if o.Reps <= 0 {
		o.Reps = 40
	}
	if o.GapMS <= 0 {
		o.GapMS = 20
	}
	if o.WinMS <= 0 {
		o.WinMS = 8
	}
	if len(o.DelaysMS) == 0 {
		o.DelaysMS = []float64{0, 5, 10, 15, 20, 22, 25, 28, 30, 35, 40, 50, 60, 80}
	}
	return o
}

// EvalFigure2 runs the sweep.
func EvalFigure2(opt Fig2Options) []Fig2Point {
	opt = opt.withDefaults()
	gap := sim.Duration(opt.GapMS * float64(sim.Millisecond))
	win := sim.Duration(opt.WinMS * float64(sim.Millisecond))

	var points []Fig2Point
	for _, dms := range opt.DelaysMS {
		delay := sim.Duration(dms * float64(sim.Millisecond))
		tsvHits, moHits := 0, 0
		for rep := 0; rep < opt.Reps; rep++ {
			seed := opt.Seed + int64(rep)*31
			if runFig2TSV(seed, gap, win, delay) {
				tsvHits++
			}
			if runFig2MemOrder(seed, gap, delay) {
				moHits++
			}
		}
		points = append(points, Fig2Point{
			DelayMS:    dms,
			TSVRate:    float64(tsvHits) / float64(opt.Reps),
			MemOrdRate: float64(moHits) / float64(opt.Reps),
		})
	}
	return points
}

// runFig2TSV executes the TSV shape: call 1 at t=0 (window win), call 2 at
// t=gap (window win). A delay before call 1 triggers the TSV only while
// the shifted window still overlaps call 2's: gap−win < delay < gap+win.
func runFig2TSV(seed int64, gap, win, delay sim.Duration) bool {
	h := memmodel.NewHeap()
	h.SetHook(memmodel.HookFunc(func(t *sim.Thread, site trace.SiteID, _ trace.ObjID, _ trace.Kind, _ sim.Duration) {
		if site == "fig2/api1" {
			t.Sleep(delay)
		}
	}))
	w := sim.NewWorld(sim.Config{Seed: seed, Jitter: 0.02})
	_ = w.Run(func(root *sim.Thread) {
		dict := h.NewRef("dict")
		other := root.Spawn("caller2", func(t *sim.Thread) {
			t.Sleep(gap)
			dict.APICall(t, "fig2/api2", true, win)
		})
		dict.APICall(root, "fig2/api1", true, win)
		root.Join(other)
	})
	return len(h.TSVs()) > 0
}

// runFig2MemOrder executes the MemOrder shape: use at t=0, dispose at
// t=gap. A delay before the use triggers the fault only when it pushes the
// use past the dispose: delay > gap.
func runFig2MemOrder(seed int64, gap, delay sim.Duration) bool {
	h := memmodel.NewHeap()
	h.SetHook(memmodel.HookFunc(func(t *sim.Thread, site trace.SiteID, _ trace.ObjID, _ trace.Kind, _ sim.Duration) {
		if site == "fig2/use" {
			t.Sleep(delay)
		}
	}))
	w := sim.NewWorld(sim.Config{Seed: seed, Jitter: 0.02})
	err := w.Run(func(root *sim.Thread) {
		obj := h.NewRef("obj")
		obj.Init(root, "fig2/init")
		user := root.Spawn("user", func(t *sim.Thread) {
			obj.Use(t, "fig2/use")
		})
		root.Sleep(gap)
		obj.Dispose(root, "fig2/dispose")
		root.Join(user)
	})
	return err != nil
}

// Table1Row is one row of the qualitative design-decision matrix (Table 1).
type Table1Row struct {
	Decision string
	Values   map[string]string // tool name -> cell
}

// Table1Tools lists the matrix columns in paper order.
var Table1Tools = []string{"RaceFuzzer", "CTrigger", "RaceMob", "DataCollider", "Tsvd", "Waffle"}

// Table1 reproduces the paper's design-decision matrix verbatim — it is
// tool metadata, not a measurement.
func Table1() []Table1Row {
	mk := func(decision string, vals ...string) Table1Row {
		m := make(map[string]string, len(Table1Tools))
		for i, tool := range Table1Tools {
			m[tool] = vals[i]
		}
		return Table1Row{Decision: decision, Values: m}
	}
	return []Table1Row{
		mk("Synchronization analysis?", "yes", "yes", "yes", "no", "no", "partial"),
		mk("Synchronization inference?", "no", "no", "no", "no", "yes", "yes"),
		mk("Identify during delay injection runs?", "no", "no", "no", "no", "yes", "no"),
		mk("Fixed-length delay?", "yes", "yes", "no", "yes", "yes", "no"),
		mk("Avoid delay interference?", "n/a", "n/a", "n/a", "n/a", "no", "yes"),
		mk("Inject at sampled candidate locations?", "yes", "yes", "yes", "yes", "no", "no"),
		mk("Probabilistic injection?", "no", "no", "yes", "yes", "yes", "yes"),
	}
}
