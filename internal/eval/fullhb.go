package eval

import (
	"waffle/internal/apps"
	"waffle/internal/core"
	"waffle/internal/sim"
	"waffle/internal/stats"
)

// The full-happens-before experiment quantifies the trade-off §4.1 makes:
// Waffle deliberately tracks only parent→child fork edges because complete
// happens-before analysis — every lock, queue, event, and join — "requires
// significant manual effort in annotating synchronization operations, in
// addition to the high overhead incurred by the happens-before analysis
// itself" (prior work reports 5–10× slowdowns). The simulator knows its
// own primitives, so this repository can run both analyses on identical
// executions: full HB prunes more false candidates (fewer wasted delays),
// but its modeled instrumentation cost dominates.

// FullHBCostFactor scales the preparation run's per-access logging cost
// under full tracking, modeling the reported 5–10× analysis overhead.
const FullHBCostFactor = 8

// FullHBRow compares the two analyses on one application.
type FullHBRow struct {
	App string

	// Candidate pairs per test (averages).
	PartialPairs float64
	FullPairs    float64

	// Preparation-run overhead (%) with modeled analysis costs.
	PartialPrepPct float64
	FullPrepPct    float64

	// Delays injected in the first detection run (totals).
	PartialDelays int
	FullDelays    int

	// Bugs exposed among this app's planted bugs (within MaxRuns).
	AppBugs     int
	PartialBugs int
	FullBugs    int
}

// FullHBOptions bounds the experiment.
type FullHBOptions struct {
	Seed     int64
	MaxTests int // per app (0 = 10)
	MaxRuns  int // bug search budget (0 = 20)
	Apps     []string
}

func (o FullHBOptions) withDefaults() FullHBOptions {
	if o.MaxTests <= 0 {
		o.MaxTests = 10
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = 20
	}
	if len(o.Apps) == 0 {
		o.Apps = []string{"ApplicationInsights", "NetMQ", "NpgSQL"}
	}
	return o
}

// fullVariant clones a test's program with full-HB tracking enabled.
func fullVariant(p core.Program) core.Program {
	sp, ok := p.(*core.SimProgram)
	if !ok {
		return p
	}
	cp := *sp
	cp.FullHB = true
	return &cp
}

// EvalFullHB runs the comparison.
func EvalFullHB(opt FullHBOptions) []FullHBRow {
	opt = opt.withDefaults()
	partialOpts := core.Options{}
	fullOpts := core.Options{TraceCost: core.DefaultTraceCost * FullHBCostFactor}

	var rows []FullHBRow
	for _, name := range opt.Apps {
		app := apps.ByName(name)
		if app == nil {
			continue
		}
		row := FullHBRow{App: name}
		tests := app.Tests
		if len(tests) > opt.MaxTests {
			tests = tests[:opt.MaxTests]
		}
		var pPairs, fPairs, pPrep, fPrep []float64
		for i, test := range tests {
			seed := opt.Seed + int64(i)*101
			base := sim.Duration(test.Prog.Execute(seed, nil).End)
			if base <= 0 {
				continue
			}

			// Partial (fork-only) analysis: Waffle as shipped.
			pw := core.NewWaffle(partialOpts)
			r1 := runTool(test.Prog, pw, 1, nil, seed)
			r2 := runTool(test.Prog, pw, 2, &r1, seed+1)
			pPrep = append(pPrep, pct(r1.End, base))
			if pw.Plan() != nil {
				pPairs = append(pPairs, float64(len(pw.Plan().Pairs)))
			}
			row.PartialDelays += r2.Stats.Count

			// Full happens-before analysis. The candidate-set comparison
			// uses identical timing (default costs) so pruning is the only
			// variable; the overhead comparison applies the modeled
			// analysis cost.
			fprog := fullVariant(test.Prog)
			fcw := core.NewWaffle(partialOpts)
			fc1 := runTool(fprog, fcw, 1, nil, seed)
			fc2 := runTool(fprog, fcw, 2, &fc1, seed+1)
			if fcw.Plan() != nil {
				fPairs = append(fPairs, float64(len(fcw.Plan().Pairs)))
			}
			row.FullDelays += fc2.Stats.Count

			fw := core.NewWaffle(fullOpts)
			f1 := runTool(fprog, fw, 1, nil, seed)
			fPrep = append(fPrep, pct(f1.End, base))
		}
		row.PartialPairs = stats.Mean(pPairs)
		row.FullPairs = stats.Mean(fPairs)
		row.PartialPrepPct = stats.Mean(pPrep)
		row.FullPrepPct = stats.Mean(fPrep)

		for _, bug := range app.BugTests() {
			row.AppBugs++
			ps := &core.Session{Prog: bug.Prog, Tool: core.NewWaffle(partialOpts), MaxRuns: opt.MaxRuns, BaseSeed: opt.Seed}
			if ps.Expose().Bug != nil {
				row.PartialBugs++
			}
			fs := &core.Session{Prog: fullVariant(bug.Prog), Tool: core.NewWaffle(fullOpts), MaxRuns: opt.MaxRuns, BaseSeed: opt.Seed}
			if fs.Expose().Bug != nil {
				row.FullBugs++
			}
		}
		rows = append(rows, row)
	}
	return rows
}
