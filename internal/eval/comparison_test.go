package eval

import "testing"

func TestToolComparisonOrdering(t *testing.T) {
	rows := EvalToolComparison(BugOptions{Seed: 1, Repetitions: 3, MaxRuns: 30, Majority: 2})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]ToolRow{}
	for _, r := range rows {
		byName[r.Tool] = r
	}
	waffle := byName["Waffle"]
	basic := byName["WaffleBasic"]
	single := byName["SingleDelay (RaceFuzzer/CTrigger-style)"]
	collider := byName["DataCollider-style sampler"]

	if waffle.Exposed != 18 {
		t.Errorf("Waffle exposed %d, want 18", waffle.Exposed)
	}
	if basic.Exposed >= waffle.Exposed {
		t.Errorf("WaffleBasic exposed %d, want fewer than Waffle", basic.Exposed)
	}
	// The one-candidate-per-run family needs many more runs (§7: "these
	// tools naturally require many more runs than Waffle").
	if single.Exposed > 0 && single.MeanRuns <= waffle.MeanRuns {
		t.Errorf("SingleDelay mean runs %.1f not above Waffle's %.1f", single.MeanRuns, waffle.MeanRuns)
	}
	// Analysis-free sampling exposes the fewest bugs per run budget.
	if collider.Exposed >= waffle.Exposed {
		t.Errorf("sampler exposed %d, expected far fewer than Waffle", collider.Exposed)
	}
}

func TestWindowSweepMonotoneCoverage(t *testing.T) {
	points := EvalWindowSweep([]float64{10, 100}, SweepOptions{Seed: 1, Repetitions: 3, MaxRuns: 12})
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].Exposed >= points[1].Exposed {
		t.Fatalf("δ=10ms exposed %d, δ=100ms exposed %d — want growth",
			points[0].Exposed, points[1].Exposed)
	}
	if points[1].Exposed < 16 {
		t.Fatalf("δ=100ms exposed only %d bugs", points[1].Exposed)
	}
	if points[0].AvgPairs >= points[1].AvgPairs {
		t.Fatalf("candidate sets did not grow with δ: %v vs %v",
			points[0].AvgPairs, points[1].AvgPairs)
	}
}

func TestAlphaSweepShortDelaysMissBugs(t *testing.T) {
	points := EvalAlphaSweep([]float64{0.9, 1.15}, SweepOptions{Seed: 1, Repetitions: 3, MaxRuns: 12})
	// α < 1 means the injected delay is shorter than the observed gap:
	// threshold-triggered MemOrder bugs cannot manifest (Figure 2).
	if points[0].Exposed >= points[1].Exposed {
		t.Fatalf("α=0.9 exposed %d, α=1.15 exposed %d — want fewer at sub-gap delays",
			points[0].Exposed, points[1].Exposed)
	}
}

func TestFullHBTradeoff(t *testing.T) {
	rows := EvalFullHB(FullHBOptions{Seed: 1, MaxTests: 5, MaxRuns: 15, Apps: []string{"ApplicationInsights"}})
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	// Full HB prunes the synchronized-disposal false candidates...
	if r.FullPairs >= r.PartialPairs {
		t.Errorf("full HB pruned nothing: %.1f vs %.1f pairs", r.FullPairs, r.PartialPairs)
	}
	// ...but costs far more during preparation.
	if r.FullPrepPct <= r.PartialPrepPct*1.5 {
		t.Errorf("modeled full-HB cost too cheap: %.0f%% vs %.0f%%", r.FullPrepPct, r.PartialPrepPct)
	}
	// Both expose the app's bugs.
	if r.PartialBugs != r.AppBugs || r.FullBugs != r.AppBugs {
		t.Errorf("bug exposure regressed: partial %d/%d, full %d/%d",
			r.PartialBugs, r.AppBugs, r.FullBugs, r.AppBugs)
	}
}

func TestBugGapsInPaperRange(t *testing.T) {
	rows := EvalBugGaps(1)
	if len(rows) != 18 {
		t.Fatalf("rows = %d", len(rows))
	}
	var min, max float64 = 1e18, 0
	for _, r := range rows {
		if r.GapMS <= 0 {
			t.Errorf("%s: no gap measured", r.ID)
			continue
		}
		if r.GapMS < min {
			min = r.GapMS
		}
		if r.GapMS > max {
			max = r.GapMS
		}
	}
	// §4.3: gaps range from under ~1ms to around 100ms.
	if min > 10 {
		t.Errorf("smallest gap %.1fms — expected some small-gap bugs", min)
	}
	if max < 30 || max > 120 {
		t.Errorf("largest gap %.1fms — expected tens-of-ms gaps", max)
	}
}
