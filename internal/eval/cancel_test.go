package eval

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// Cancelling the sweep mid-corpus commits only the prefix scheduled
// before the cancel, flags the report, and records no cancellation noise
// as oracle violations.
func TestRunDifferentialCtxCancelMidCorpus(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		// Let a little real work start, then pull the plug. The sweep
		// discards the wave in flight, so any nonzero delay exercises the
		// mid-corpus path without making the test timing-sensitive.
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	rep := RunDifferentialCtx(ctx, DiffOptions{Seed: 1000, Programs: 200, Workers: 2})
	if !rep.Cancelled {
		t.Fatal("report not flagged Cancelled")
	}
	if len(rep.Results) >= 200 {
		t.Fatalf("cancelled sweep still committed all %d programs", len(rep.Results))
	}
	for _, v := range rep.Violations {
		t.Errorf("cancelled sweep recorded violation: %s", v)
	}
	// The committed prefix is contiguous from index 0 (in-order commits).
	for k, pd := range rep.Results {
		want := rep.Seed + int64(k)
		if pd.Seed != want {
			t.Fatalf("result %d has seed %d, want %d — committed prefix not contiguous", k, pd.Seed, want)
		}
	}
}

// A Background context reproduces the context-free sweep bit-for-bit.
func TestRunDifferentialCtxBackgroundMatches(t *testing.T) {
	a := RunDifferential(DiffOptions{Seed: 77, Programs: 2})
	b := RunDifferentialCtx(context.Background(), DiffOptions{Seed: 77, Programs: 2})
	a.StripTiming()
	b.StripTiming()
	if a.Cancelled || b.Cancelled {
		t.Fatal("uncancelled sweeps flagged Cancelled")
	}
	aj, bj := mustJSON(t, a), mustJSON(t, b)
	if string(aj) != string(bj) {
		t.Fatal("RunDifferentialCtx(Background) diverged from RunDifferential")
	}
}
