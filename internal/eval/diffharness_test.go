package eval

import (
	"encoding/json"
	"testing"
)

// TestDifferentialSmoke runs a small mixed corpus twice and asserts the
// harness itself is deterministic: same options, byte-identical report.
func TestDifferentialSmoke(t *testing.T) {
	opt := DiffOptions{Seed: 4242, Programs: 6, Mixed: true, Workers: 2}
	r1 := RunDifferential(opt)
	if len(r1.Violations) > 0 {
		t.Fatalf("violations on smoke corpus: %v", r1.Violations)
	}
	if !r1.ReproOK {
		t.Fatal("reproducibility checks failed")
	}
	if r1.Reanalysis == nil || r1.Reanalysis.FullNS <= 0 || r1.Reanalysis.IncrementalNS <= 0 {
		t.Fatalf("missing re-analysis timing: %+v", r1.Reanalysis)
	}
	r2 := RunDifferential(opt)
	// Wall-clock timings are the one legitimately nondeterministic part.
	r1.StripTiming()
	r2.StripTiming()
	b1, err := json.Marshal(r1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(r2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("differential report is not deterministic across identical invocations")
	}
}

// TestDifferentialCorpus is the acceptance oracle of the generator +
// harness pipeline, on a 100-program mixed corpus:
//
//   - Waffle exposes every planted bug within the run budget;
//   - no tool ever reports a bug outside the ground-truth manifest, and
//     no disarmed program faults (zero false positives);
//   - Waffle needs no more runs on average than WaffleBasic (misses
//     count as MaxRuns+1);
//   - TSVD, which instruments only thread-unsafe API calls, exposes no
//     planted memory-ordering bug at all;
//   - every program regenerated, re-traced, and re-analyzed
//     bit-identically.
func TestDifferentialCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus")
	}
	rep := RunDifferential(DiffOptions{Seed: 1000, Programs: 100, Mixed: true})

	if len(rep.Violations) > 0 {
		n := len(rep.Violations)
		if n > 10 {
			rep.Violations = rep.Violations[:10]
		}
		t.Fatalf("%d oracle violations, first %d: %v", n, len(rep.Violations), rep.Violations)
	}
	if !rep.ReproOK {
		t.Error("reproducibility checks failed")
	}
	if rep.PlantedUBI == 0 || rep.PlantedUAF == 0 {
		t.Errorf("corpus not mixed-kind: %d UBI, %d UAF", rep.PlantedUBI, rep.PlantedUAF)
	}

	wf, ok := rep.Summary("waffle")
	if !ok || wf.Sessions == 0 {
		t.Fatal("no waffle summary")
	}
	if wf.Sessions != rep.PlantedUBI+rep.PlantedUAF {
		t.Errorf("waffle sessions %d != planted bugs %d", wf.Sessions, rep.PlantedUBI+rep.PlantedUAF)
	}
	if wf.Missed != 0 || wf.ExposureRate != 1 {
		t.Errorf("waffle missed %d of %d planted bugs (rate %.3f), want 100%% exposure",
			wf.Missed, wf.Sessions, wf.ExposureRate)
	}

	basic, ok := rep.Summary("wafflebasic")
	if !ok || basic.Sessions != wf.Sessions {
		t.Fatalf("wafflebasic summary missing or session count mismatch: %+v", basic)
	}
	if wf.MeanRuns > basic.MeanRuns {
		t.Errorf("waffle mean runs-to-exposure %.2f exceeds wafflebasic's %.2f",
			wf.MeanRuns, basic.MeanRuns)
	}
	if wf.P50Runs > basic.P50Runs || wf.P99Runs > basic.P99Runs {
		t.Errorf("waffle percentiles (p50 %.0f, p99 %.0f) exceed wafflebasic's (p50 %.0f, p99 %.0f)",
			wf.P50Runs, wf.P99Runs, basic.P50Runs, basic.P99Runs)
	}

	ts, ok := rep.Summary("tsvd")
	if !ok || ts.Sessions != wf.Sessions {
		t.Fatalf("tsvd summary missing or session count mismatch: %+v", ts)
	}
	if ts.Exposed != 0 {
		t.Errorf("tsvd exposed %d memory-ordering bugs; its API-call instrumentation should expose none", ts.Exposed)
	}
}
