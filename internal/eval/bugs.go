package eval

import (
	"context"

	"waffle/internal/apps"
	"waffle/internal/core"
	"waffle/internal/sched"
	"waffle/internal/stats"
	"waffle/internal/wafflebasic"
)

// BugRow is one Table 4 row: per-bug detection results for both tools.
type BugRow struct {
	ID      string
	App     string
	IssueID string
	Known   bool

	BaseMS float64 // measured uninstrumented execution time of the input

	BasicRuns     int     // runs to expose (0 = missed in MaxRuns)
	BasicSlowdown float64 // end-to-end slowdown when exposed
	BasicExposed  int     // attempts (of Repetitions) that exposed it

	WaffleRuns     int
	WaffleSlowdown float64
	WaffleExposed  int

	Paper *apps.BugSpec // the paper's numbers for comparison
}

// BugOptions bounds a Table 4 evaluation.
type BugOptions struct {
	Seed        int64
	Repetitions int // 0 = stats.Repetitions (the paper's 15)
	MaxRuns     int // 0 = 50, the paper's search bound
	Majority    int // majority threshold, 0 = 10 (the paper's 10-of-15)
	MaxTests    int // cap per-app tests for Table 7's suite slowdown (0 = all)
	// Parallelism fans independent bug evaluations over that many workers
	// (results stay in Table 4 order; every reported number is unchanged —
	// detection runs are deterministic per seed). 0 = GOMAXPROCS.
	Parallelism int
}

func (o BugOptions) withDefaults() BugOptions {
	if o.Repetitions <= 0 {
		o.Repetitions = stats.Repetitions
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = core.DefaultMaxRuns
	}
	if o.Majority <= 0 {
		o.Majority = 10
	}
	return o
}

// EvalBug measures one planted bug with both tools, repeating each session
// per the paper's methodology (§6.1–6.2: 15 attempts, majority or median
// reporting, 50-run search bound).
func EvalBug(test *apps.Test, opt BugOptions) BugRow {
	opt = opt.withDefaults()
	row := BugRow{
		ID: test.Bug.ID, App: test.Bug.AppName, IssueID: test.Bug.IssueID,
		Known: test.Bug.Known, Paper: test.Bug,
	}
	base := test.Prog.Execute(opt.Seed, nil)
	row.BaseMS = float64(base.End) / 1000.0

	basic := stats.RepeatExposeParallel(opt.Repetitions, opt.MaxRuns, opt.Seed, opt.Parallelism,
		func() core.Program { return test.Prog },
		func() core.Tool { return wafflebasic.New(core.Options{}) })
	bsum := stats.Summarize(basic, opt.Majority)
	row.BasicExposed = bsum.Exposed
	// Per the paper, a bug is "missed" when the tool cannot expose it
	// within the run budget; sporadic sub-majority exposures on a
	// probabilistic tool still count as the median.
	if bsum.Exposed*2 > opt.Repetitions {
		row.BasicRuns = bsum.RunsReported
		row.BasicSlowdown = bsum.MedianSlowdown
	}

	waffle := stats.RepeatExposeParallel(opt.Repetitions, opt.MaxRuns, opt.Seed, opt.Parallelism,
		func() core.Program { return test.Prog },
		func() core.Tool { return core.NewWaffle(core.Options{}) })
	wsum := stats.Summarize(waffle, opt.Majority)
	row.WaffleExposed = wsum.Exposed
	if wsum.Exposed*2 > opt.Repetitions {
		row.WaffleRuns = wsum.RunsReported
		row.WaffleSlowdown = wsum.MedianSlowdown
	}
	return row
}

// EvalTable4 measures all 18 planted bugs, fanning the per-bug sessions
// over BugOptions.Parallelism workers. Rows come back in Table 4 order
// with numbers identical to a sequential evaluation.
func EvalTable4(opt BugOptions) []BugRow {
	bugs := apps.AllBugs()
	rows := make([]BugRow, len(bugs))
	// The bug-level fan-out saturates the workers; per-session detection
	// runs stay sequential so the pool isn't oversubscribed quadratically.
	inner := opt
	inner.Parallelism = 1
	sched.Run(sched.Pool{Workers: opt.Parallelism},
		0, len(bugs)-1,
		func(_ context.Context, i int) (BugRow, error) {
			return EvalBug(bugs[i], inner), nil
		},
		func(r sched.Result[BugRow]) bool {
			rows[r.Index] = r.Value
			return true
		})
	return rows
}

// AblationRow is one Table 7 row: an alternative design's missed bugs and
// relative slowdown versus full Waffle.
type AblationRow struct {
	Name       string
	BugsMissed int
	Slowdown   float64 // mean detection-time ratio over full Waffle
}

// EvalTable7 measures the four single-design-point ablations. Bugs missed
// is counted over the 18 planted bugs (majority-of-attempts, as in Table
// 4). Slowdown follows §6.4's methodology: the impact on detection-run
// performance averaged across all test inputs for all applications — each
// ablation's first detection run time over full Waffle's, mean across the
// suite.
func EvalTable7(opt BugOptions) []AblationRow {
	opt = opt.withDefaults()
	ablations := []struct {
		name string
		opts core.Options
	}{
		{"no parent-child analysis (§4.1)", core.Options{DisableParentChild: true}},
		{"no preparation run (§4.2)", core.Options{DisablePrepRun: true}},
		{"no custom delay length (§4.3)", core.Options{DisableCustomLengths: true}},
		{"no interference control (§4.4)", core.Options{DisableInterferenceControl: true}},
	}

	bugs := apps.AllBugs()
	missed := func(opts core.Options) int {
		n := 0
		for _, test := range bugs {
			exposed := 0
			for rep := 0; rep < opt.Repetitions; rep++ {
				s := &core.Session{
					Prog:     test.Prog,
					Tool:     core.NewWaffle(opts),
					MaxRuns:  opt.MaxRuns,
					BaseSeed: opt.Seed + int64(rep)*10_007,
				}
				if s.Expose().Bug != nil {
					exposed++
				}
			}
			if exposed*2 <= opt.Repetitions {
				n++
			}
		}
		return n
	}

	// Suite-wide detection-run time under a given configuration.
	detectTime := func(opts core.Options) float64 {
		var total float64
		for _, a := range apps.Registry() {
			tests := a.Tests
			if opt.MaxTests > 0 && len(tests) > opt.MaxTests {
				tests = tests[:opt.MaxTests]
			}
			for i, test := range tests {
				seed := opt.Seed + int64(i)*101
				wf := core.NewWaffle(opts)
				r1 := runTool(test.Prog, wf, 1, nil, seed)
				r2 := runTool(test.Prog, wf, 2, &r1, seed+1)
				total += float64(r2.End)
			}
		}
		return total
	}

	fullTime := detectTime(core.Options{})
	var rows []AblationRow
	for _, ab := range ablations {
		row := AblationRow{Name: ab.name, BugsMissed: missed(ab.opts)}
		if fullTime > 0 {
			row.Slowdown = detectTime(ab.opts) / fullTime
		}
		rows = append(rows, row)
	}
	return rows
}

// GapRow records one planted bug's delay-free time gap — reproducing
// §4.3's measurement: "for the 12 known bugs in our evaluation,
// measurements reveal that these time gaps range from less than 1 to
// around 100 milliseconds", the observation that motivates variable-length
// delays.
type GapRow struct {
	ID    string
	App   string
	Known bool
	GapMS float64 // the exposing pair's recorded gap in the preparation run
}

// EvalBugGaps runs one preparation run per bug input and reports the gap
// of the pair that detection later realizes (the pair involving the
// eventually-faulting site).
func EvalBugGaps(seed int64) []GapRow {
	var rows []GapRow
	for _, test := range apps.AllBugs() {
		row := GapRow{ID: test.Bug.ID, App: test.Bug.AppName, Known: test.Bug.Known}
		s := &core.Session{Prog: test.Prog, Tool: core.NewWaffle(core.Options{}), MaxRuns: 50, BaseSeed: seed}
		out := s.Expose()
		if out.Bug != nil {
			// The culprit pair's gap, as the minimal replay plan sees it.
			plan := core.MinimalPlan(out.Bug, core.Options{})
			var maxGap float64
			for _, p := range plan.Pairs {
				if ms := float64(p.Gap) / 1000.0; ms > maxGap {
					maxGap = ms
				}
			}
			row.GapMS = maxGap
		}
		rows = append(rows, row)
	}
	return rows
}

// AblationDetailRow shows, per bug, the runs-to-expose under full Waffle
// and under each Table 7 ablation (0 = missed within the budget) — the
// per-bug decomposition behind Table 7's aggregate.
type AblationDetailRow struct {
	ID             string
	Full           int
	NoParentChild  int
	NoPrep         int
	NoCustomLen    int
	NoInterference int
}

// EvalAblationDetail measures every bug under every ablation once per
// seed (median across Repetitions).
func EvalAblationDetail(opt BugOptions) []AblationDetailRow {
	opt = opt.withDefaults()
	variants := []core.Options{
		{},
		{DisableParentChild: true},
		{DisablePrepRun: true},
		{DisableCustomLengths: true},
		{DisableInterferenceControl: true},
	}
	var rows []AblationDetailRow
	for _, test := range apps.AllBugs() {
		row := AblationDetailRow{ID: test.Bug.ID}
		cells := [5]*int{&row.Full, &row.NoParentChild, &row.NoPrep, &row.NoCustomLen, &row.NoInterference}
		for vi, opts := range variants {
			var runs []float64
			exposed := 0
			for rep := 0; rep < opt.Repetitions; rep++ {
				s := &core.Session{
					Prog:     test.Prog,
					Tool:     core.NewWaffle(opts),
					MaxRuns:  opt.MaxRuns,
					BaseSeed: opt.Seed + int64(rep)*10_007,
				}
				if out := s.Expose(); out.Bug != nil {
					exposed++
					runs = append(runs, float64(out.Bug.Run))
				}
			}
			if exposed*2 > opt.Repetitions {
				*cells[vi] = int(stats.MedianFloat(runs))
			}
		}
		rows = append(rows, row)
	}
	return rows
}
