package eval

import (
	"encoding/json"
	"testing"

	"waffle/internal/control"
	"waffle/internal/obs"
)

// TSVD instruments only thread-unsafe API calls, so it can never expose
// a planted MemOrder bug: every armed TSVD session is a guaranteed miss.
// This regression pins the miss-sentinel rule on exactly that case —
// before the fix, the MaxRuns+1 sentinel leaked into the percentile
// sample and the tsvd summary reported P50 = P90 = P99 = budget+1, a
// "runs-to-exposure" no session ever achieved.
func TestMissSentinelExcludedFromPercentiles(t *testing.T) {
	o := DiffOptions{Seed: 1200, Programs: 4, Mixed: true}
	rep := RunDifferential(o)
	if len(rep.Violations) != 0 {
		t.Fatalf("oracle violations: %v", rep.Violations)
	}
	ts, ok := rep.Summary("tsvd")
	if !ok {
		t.Fatal("no tsvd summary")
	}
	if ts.Sessions == 0 {
		t.Fatal("no armed tsvd sessions in the corpus")
	}
	if ts.Exposed != 0 || ts.Missed != ts.Sessions {
		t.Fatalf("tsvd exposed %d of %d; this test requires guaranteed misses", ts.Exposed, ts.Sessions)
	}
	// Percentiles over exposing sessions only: with zero exposures the
	// sample is empty and every order statistic is 0.
	if ts.P50Runs != 0 || ts.P90Runs != 0 || ts.P99Runs != 0 {
		t.Fatalf("miss sentinel leaked into percentiles: p50=%v p90=%v p99=%v, want all 0",
			ts.P50Runs, ts.P90Runs, ts.P99Runs)
	}
	// The mean DOES keep the sentinel — every session costs budget+1.
	wantMean := float64(o.withDefaults().TSVDRuns + 1)
	if ts.MeanRuns != wantMean {
		t.Fatalf("all-miss mean = %v, want sentinel %v", ts.MeanRuns, wantMean)
	}
	if ts.ExposureRate != 0 {
		t.Fatalf("exposure rate = %v, want 0", ts.ExposureRate)
	}
	// Tools that exposed some bugs must report percentiles bounded by
	// the budget, never the sentinel.
	for _, name := range []string{"waffle", "wafflebasic"} {
		s, _ := rep.Summary(name)
		if s.Exposed > 0 && s.P99Runs > float64(rep.MaxRuns) {
			t.Fatalf("%s p99 = %v exceeds budget %d: sentinel in sample", name, s.P99Runs, rep.MaxRuns)
		}
	}
}

// A nil controller and a Disabled controller must produce byte-identical
// differential reports: the adaptive machinery is invisible until armed.
func TestDisabledControllerReportIdentical(t *testing.T) {
	base := DiffOptions{Seed: 1300, Programs: 4, Mixed: true}

	off := base
	off.Controller = nil
	want := RunDifferential(off)

	dis := base
	dis.Controller = control.New(control.Config{Disabled: true})
	got := RunDifferential(dis)

	want.StripTiming()
	got.StripTiming()
	wj, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gj, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(wj) != string(gj) {
		t.Fatalf("disabled controller changed the report:\n nil: %s\n off: %s", wj, gj)
	}
}

// Adaptive smoke: on a small corpus the controller must preserve the
// exposed-bug set per tool, strictly reduce total runs, add no oracle
// violations, and emit a schema-valid campaign metrics snapshot.
func TestAdaptiveComparisonSmoke(t *testing.T) {
	rep := RunAdaptiveComparison(DiffOptions{Seed: 1000, Programs: 8, Mixed: true}, control.Config{})
	assertAdaptiveReport(t, rep)
}

// Acceptance: the ISSUE-scale corpus. The adaptive sweep must expose the
// same planted-bug set as the fixed harness with strictly fewer total
// runs and zero out-of-manifest reports.
func TestAdaptiveCorpusAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("100-program corpus: skipped in -short")
	}
	rep := RunAdaptiveComparison(DiffOptions{Seed: 1000, Programs: 100, Mixed: true}, control.Config{})
	assertAdaptiveReport(t, rep)
	if len(rep.Retunes) == 0 {
		t.Fatal("controller made no retune decisions over 100 programs")
	}
}

func assertAdaptiveReport(t *testing.T, rep *AdaptiveReport) {
	t.Helper()
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if !rep.Parity {
		t.Fatal("adaptive arm lost exposures (parity=false) yet reported no violations")
	}
	if rep.Adaptive.Exposed != rep.Fixed.Exposed {
		t.Fatalf("adaptive exposed %d, fixed exposed %d", rep.Adaptive.Exposed, rep.Fixed.Exposed)
	}
	if rep.RunsSaved <= 0 {
		t.Fatalf("adaptive used %d runs vs fixed %d: no savings", rep.Adaptive.TotalRuns, rep.Fixed.TotalRuns)
	}
	if rep.Metrics == nil {
		t.Fatal("no campaign metrics snapshot")
	}
	if err := obs.ValidateSnapshot(rep.Metrics); err != nil {
		t.Fatalf("campaign snapshot fails schema validation: %v", err)
	}
	if rep.Metrics.Counters["control.runs_total"] == 0 {
		t.Fatal("campaign snapshot recorded no runs")
	}
	// Per-arm sanity: armed waffle sessions must have exposed something in
	// both arms, and the tsvd guaranteed-miss shape must hold in both.
	for _, arm := range []AdaptiveArm{rep.Fixed, rep.Adaptive} {
		for _, s := range arm.Tools {
			if s.Tool == "waffle" && s.Exposed == 0 {
				t.Fatal("waffle exposed nothing")
			}
			if s.Tool == "tsvd" && (s.Exposed != 0 || s.P99Runs != 0) {
				t.Fatalf("tsvd summary %+v: want all-miss with 0 percentiles", s)
			}
		}
	}
}
