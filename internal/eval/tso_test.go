package eval

import (
	"encoding/json"
	"testing"
)

// TestDifferentialTSOSmoke drives a small store-buffer corpus through the
// differential oracle and asserts the TSO acceptance properties at smoke
// scale, plus harness determinism: same options, byte-identical report.
//
//   - Waffle (flush-delay injection) exposes every planted stale read;
//   - every exposure carries the planted fence pair, the fence repairs
//     the schedule, and the unfenced schedule replays (checked inside
//     diffProgram; any breach lands in Violations);
//   - WaffleBasic's thread delays shift fork-ordered subtrees wholesale
//     and TSVD instruments no API calls here, so neither exposes any;
//   - no disarmed program faults (zero false positives).
func TestDifferentialTSOSmoke(t *testing.T) {
	opt := DiffOptions{Seed: 9191, Programs: 6, Mixed: true, TSO: true, Workers: 2}
	r1 := RunDifferential(opt)
	if len(r1.Violations) > 0 {
		t.Fatalf("violations on TSO smoke corpus: %v", r1.Violations)
	}
	if !r1.ReproOK {
		t.Fatal("reproducibility checks failed")
	}
	if r1.PlantedStale == 0 || r1.PlantedUBI != 0 || r1.PlantedUAF != 0 {
		t.Fatalf("TSO corpus planted %d stale, %d UBI, %d UAF; want stale only",
			r1.PlantedStale, r1.PlantedUBI, r1.PlantedUAF)
	}

	wf, ok := r1.Summary("waffle")
	if !ok || wf.Sessions != r1.PlantedStale {
		t.Fatalf("waffle summary missing or session count mismatch: %+v", wf)
	}
	if wf.Missed != 0 || wf.ExposureRate != 1 {
		t.Errorf("waffle missed %d of %d planted stale reads (rate %.3f), want 100%% exposure",
			wf.Missed, wf.Sessions, wf.ExposureRate)
	}
	for _, name := range []string{"wafflebasic", "tsvd"} {
		s, ok := r1.Summary(name)
		if !ok {
			t.Fatalf("no %s summary", name)
		}
		if s.Exposed != 0 {
			t.Errorf("%s exposed %d stale reads; only visibility delays can expose them", name, s.Exposed)
		}
	}

	r2 := RunDifferential(opt)
	r1.StripTiming()
	r2.StripTiming()
	b1, err := json.Marshal(r1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(r2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("TSO differential report is not deterministic across identical invocations")
	}
}

// TestDifferentialTSOCorpus is the TSO acceptance oracle at full scale:
// a 100-program store-buffer corpus with every planted stale read exposed
// by Waffle, every fence proposal matching its manifest (and verified to
// repair), and zero violations anywhere — disarmed controls included.
func TestDifferentialTSOCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus")
	}
	rep := RunDifferential(DiffOptions{Seed: 2000, Programs: 100, Mixed: true, TSO: true})

	if len(rep.Violations) > 0 {
		n := len(rep.Violations)
		if n > 10 {
			rep.Violations = rep.Violations[:10]
		}
		t.Fatalf("%d oracle violations, first %d: %v", n, len(rep.Violations), rep.Violations)
	}
	if !rep.ReproOK {
		t.Error("reproducibility checks failed")
	}

	wf, ok := rep.Summary("waffle")
	if !ok || wf.Sessions == 0 {
		t.Fatal("no waffle summary")
	}
	if wf.Sessions != rep.PlantedStale {
		t.Errorf("waffle sessions %d != planted stale reads %d", wf.Sessions, rep.PlantedStale)
	}
	if wf.Missed != 0 || wf.ExposureRate != 1 {
		t.Errorf("waffle missed %d of %d planted stale reads (rate %.3f), want 100%% exposure",
			wf.Missed, wf.Sessions, wf.ExposureRate)
	}
	for _, name := range []string{"wafflebasic", "tsvd"} {
		s, _ := rep.Summary(name)
		if s.Exposed != 0 {
			t.Errorf("%s exposed %d stale reads, want 0", name, s.Exposed)
		}
	}
}
