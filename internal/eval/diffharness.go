package eval

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"time"

	"waffle/internal/control"
	"waffle/internal/core"
	"waffle/internal/engine"
	"waffle/internal/genprog"
	"waffle/internal/obs"
	"waffle/internal/sched"
	"waffle/internal/stats"
	"waffle/internal/trace"
	"waffle/internal/tsvd"
	"waffle/internal/wafflebasic"
)

// DiffOptions configures a differential-oracle sweep over a generated
// corpus. The zero value (plus a seed) is a usable smoke configuration.
type DiffOptions struct {
	// Seed is the corpus base seed; program i is generated from Seed+i.
	Seed int64
	// Programs is the corpus size. <= 0 means 25.
	Programs int
	// Size selects the per-program scale. Mixed overrides it.
	Size genprog.Size
	// Mixed cycles small/medium/large across the corpus.
	Mixed bool
	// TSO generates store-buffer corpora: programs run under TSO semantics
	// with planted stale-read bugs (genprog.TSOSizeConfig), and the waffle
	// tool's analysis admits fork-ordered write→read pairs as StaleRead
	// candidates. The oracle additionally checks each exposure's fence
	// proposal against the manifest and verifies the repair — replaying
	// the exposing schedule on a fenced variant must run clean. The
	// baselines run unchanged (SC analysis, thread delays), quantifying
	// that visibility-delay injection is what exposes this class.
	TSO bool
	// MaxRuns bounds each armed Waffle/WaffleBasic session (preparation
	// included). <= 0 means 25.
	MaxRuns int
	// TSVDRuns bounds each armed TSVD session. TSVD instruments only
	// thread-unsafe API calls, so it can never expose a planted MemOrder
	// bug; a short budget demonstrates that without burning runs.
	// <= 0 means 6.
	TSVDRuns int
	// DisarmRuns bounds the disarmed zero-FP control sessions. <= 0 means
	// 12 — enough runs for every per-site probability to decay to zero,
	// so the schedule space the tools can reach has been exhausted.
	DisarmRuns int
	// Workers bounds corpus-level parallelism. <= 0 means GOMAXPROCS.
	Workers int
	// Metrics receives engine, session, and pool counters from every
	// session the sweep drives; the final snapshot lands in
	// DiffReport.Metrics. Nil disables instrumentation (and omits the
	// report section).
	Metrics *obs.Registry
	// Controller, when non-nil and enabled, attaches the adaptive campaign
	// controller: each session gets a per-target core.Tuner, its engine's
	// Options.Metrics is diverted to the controller's per-target registry
	// (so the controller can read inject.decay_floor_hits per session),
	// and outcomes feed back for campaign-wide budget reallocation.
	// Session-level Metrics stay on the global registry — the two layers
	// are independent by design. Nil (or a Disabled controller) leaves
	// Session.Tuner unset: the sweep is byte-identical to the fixed
	// harness.
	Controller *control.Controller
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.Programs <= 0 {
		o.Programs = 25
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = 25
	}
	if o.TSVDRuns <= 0 {
		o.TSVDRuns = 6
	}
	if o.DisarmRuns <= 0 {
		o.DisarmRuns = 12
	}
	return o
}

// DiffTools names the compared detectors in report order.
var DiffTools = []string{"waffle", "wafflebasic", "tsvd"}

// newDiffTool builds one comparison detector. The TSVD adapter is the
// shared one in internal/engine, so the harness and the campaign server
// drive byte-identical code.
func newDiffTool(name string, metrics *obs.Registry, tso bool) core.Tool {
	switch name {
	case "waffle":
		return core.NewWaffle(core.Options{Metrics: metrics, TSO: tso})
	case "wafflebasic":
		return wafflebasic.New(core.Options{Metrics: metrics})
	case "tsvd":
		return engine.NewTSVDTool(tsvd.New(tsvd.Options{}))
	}
	panic("eval: unknown diff tool " + name)
}

// BugOutcome is one (bug, tool) cell of the differential table.
type BugOutcome struct {
	Bug  int    `json:"bug"`
	Kind string `json:"kind"`
	Tool string `json:"tool"`
	// Runs is the 1-based run that exposed the bug, 0 when the tool
	// missed it within its budget.
	Runs int `json:"runs"`
	// Delays counts the delays injected in the exposing run.
	Delays int `json:"delays,omitempty"`
}

// ProgramDiff is one generated program's differential result.
type ProgramDiff struct {
	Program  string       `json:"program"`
	Seed     int64        `json:"seed"`
	Size     string       `json:"size"`
	Bugs     int          `json:"bugs"`
	Threads  int          `json:"threads"`
	Objects  int          `json:"objects"`
	Outcomes []BugOutcome `json:"outcomes"`
	// RunsUsed totals the runs each tool consumed on this program, armed
	// and disarmed sessions included.
	RunsUsed   map[string]int `json:"runs_used"`
	Violations []string       `json:"violations,omitempty"`
	// ReanalyzeFullNS and ReanalyzeIncNS time the second campaign's
	// re-analysis of this program's repeated preparation trace:
	// from-scratch Analyze vs AnalyzeIncremental seeded by campaign 1.
	ReanalyzeFullNS int64 `json:"reanalyze_full_ns,omitempty"`
	ReanalyzeIncNS  int64 `json:"reanalyze_inc_ns,omitempty"`
}

// ToolDiffSummary aggregates one tool over the corpus. MeanRuns (and its
// CI) counts a missed bug as MaxRuns+1 — the whole budget spent plus the
// run that would still be needed — so means remain comparable across
// tools with different hit rates. The P50/P90/P99 order statistics are
// computed over exposing sessions ONLY (0 when nothing exposed): folding
// a sentinel into a percentile would report a "runs-to-exposure" no
// session ever achieved and make the tail track the miss rate rather
// than the exposure latency. Misses are reported explicitly in Missed.
type ToolDiffSummary struct {
	Tool         string  `json:"tool"`
	Sessions     int     `json:"sessions"` // armed sessions = planted bugs
	Exposed      int     `json:"exposed"`
	Missed       int     `json:"missed"`
	ExposureRate float64 `json:"exposure_rate"`
	MeanRuns     float64 `json:"mean_runs"`
	CI95Runs     float64 `json:"ci95_runs"` // 95% CI half-width of MeanRuns
	P50Runs      float64 `json:"p50_runs"`  // over exposing sessions only
	P90Runs      float64 `json:"p90_runs"`  // over exposing sessions only
	P99Runs      float64 `json:"p99_runs"`  // over exposing sessions only
	Delays       int     `json:"delays"`    // delays injected across exposing runs
	// TotalRuns counts every run the tool consumed across the corpus —
	// armed and disarmed sessions alike. This is the quantity the
	// adaptive controller competes on.
	TotalRuns int `json:"total_runs"`
}

// DiffReport is the full differential-oracle result: the payload of
// BENCH_gen.json and the object the acceptance tests assert on.
type DiffReport struct {
	Seed       int64 `json:"seed"`
	Programs   int   `json:"programs"`
	MaxRuns    int   `json:"max_runs"`
	PlantedUBI int   `json:"planted_ubi"`
	PlantedUAF int   `json:"planted_uaf"`
	// PlantedStale counts planted stale-read bugs (TSO corpora only).
	PlantedStale int               `json:"planted_stale,omitempty"`
	Tools        []ToolDiffSummary `json:"tools"`
	Results      []ProgramDiff     `json:"results"`
	// Violations aggregates every oracle breach across the corpus: a
	// report outside a manifest, a fault in a disarmed program, an
	// abnormal run, or a reproducibility divergence. Empty on a healthy
	// pipeline.
	Violations []string `json:"violations,omitempty"`
	// ReproOK reports that every program regenerated byte-identically and
	// its preparation trace and plans were bit-reproducible across
	// Analyze, AnalyzeParallel, AnalyzeStream, and AnalyzeIncremental.
	ReproOK bool `json:"repro_ok"`
	// Reanalysis aggregates the repeated-campaign re-analysis timing over
	// the corpus: total wall-clock for from-scratch vs incremental
	// re-analysis of every program's second preparation trace.
	Reanalysis *ReanalysisStats `json:"reanalysis,omitempty"`
	// Metrics is the campaign observability snapshot taken at the end of
	// the sweep, present when DiffOptions.Metrics was set. Its delay and
	// run counters cover every session the sweep drove.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// Cancelled reports that the sweep's context died before the corpus
	// finished: Results covers the committed prefix only, and the
	// summaries describe that prefix, not the full corpus.
	Cancelled bool `json:"cancelled,omitempty"`
}

// ReanalysisStats is the corpus-wide repeated-campaign measurement: how
// long re-analyzing every program's second preparation trace took from
// scratch versus incrementally.
type ReanalysisStats struct {
	FullNS        int64   `json:"full_ns"`
	IncrementalNS int64   `json:"incremental_ns"`
	Speedup       float64 `json:"speedup"` // FullNS / IncrementalNS
}

// StripTiming zeroes the report's wall-clock measurements (per-program and
// aggregate re-analysis timing). Everything else in the report is
// deterministic for a fixed seed; callers that byte-compare reports across
// invocations normalize with this first.
func (r *DiffReport) StripTiming() {
	for i := range r.Results {
		r.Results[i].ReanalyzeFullNS = 0
		r.Results[i].ReanalyzeIncNS = 0
	}
	r.Reanalysis = nil
}

// Summary returns the named tool's corpus summary.
func (r *DiffReport) Summary(tool string) (ToolDiffSummary, bool) {
	for _, s := range r.Tools {
		if s.Tool == tool {
			return s, true
		}
	}
	return ToolDiffSummary{}, false
}

// RunDifferential generates a corpus and runs the differential oracle:
// every planted bug armed in isolation under every tool, plus a disarmed
// zero-FP control per tool, plus per-program reproducibility checks. The
// corpus fans out over a sched pool; per-program results are committed in
// index order, so the report is deterministic for a fixed seed.
func RunDifferential(o DiffOptions) *DiffReport {
	return RunDifferentialCtx(context.Background(), o)
}

// RunDifferentialCtx is RunDifferential under a caller context: once ctx
// is done no further program is scheduled, sessions in flight abort at
// their next run boundary (the simulator cancels mid-run), and the wave
// being executed when the context died is discarded — the report covers
// exactly the committed prefix and is flagged Cancelled. With a
// Background context the sweep is byte-identical to RunDifferential.
func RunDifferentialCtx(ctx context.Context, o DiffOptions) *DiffReport {
	o = o.withDefaults()
	rep := &DiffReport{Seed: o.Seed, Programs: o.Programs, MaxRuns: o.MaxRuns, ReproOK: true}

	poolWorkers := o.Workers
	if poolWorkers <= 0 {
		poolWorkers = runtime.GOMAXPROCS(0)
	}
	pool := sched.Pool{Workers: poolWorkers, Wave: poolWorkers, Metrics: o.Metrics,
		Tune: o.Controller.PoolTune(poolWorkers)}
	runs := make(map[string][]float64)        // all armed sessions; miss = budget+1 sentinel (means)
	exposedRuns := make(map[string][]float64) // exposing sessions only (percentiles)
	totalRuns := make(map[string]int)
	delays := make(map[string]int)
	exposed := make(map[string]int)
	sessions := make(map[string]int)
	var reanalyzeFull, reanalyzeInc int64

	_, runErr := sched.RunCtx(ctx, pool, 0, o.Programs-1, func(jctx context.Context, i int) (*ProgramDiff, error) {
		return o.diffProgram(jctx, i), nil
	}, func(res sched.Result[*ProgramDiff]) bool {
		if res.Err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("program %d: %v", res.Index, res.Err))
			return true
		}
		pd := res.Value
		rep.Results = append(rep.Results, *pd)
		rep.Violations = append(rep.Violations, pd.Violations...)
		reanalyzeFull += pd.ReanalyzeFullNS
		reanalyzeInc += pd.ReanalyzeIncNS
		for tool, n := range pd.RunsUsed {
			totalRuns[tool] += n
		}
		for _, out := range pd.Outcomes {
			sessions[out.Tool]++
			if out.Tool == DiffTools[0] {
				switch out.Kind {
				case core.UseBeforeInit.String():
					rep.PlantedUBI++
				case core.StaleRead.String():
					rep.PlantedStale++
				default:
					rep.PlantedUAF++
				}
			}
			budget := o.MaxRuns
			if out.Tool == "tsvd" {
				budget = o.TSVDRuns
			}
			if out.Runs > 0 {
				exposed[out.Tool]++
				delays[out.Tool] += out.Delays
				runs[out.Tool] = append(runs[out.Tool], float64(out.Runs))
				exposedRuns[out.Tool] = append(exposedRuns[out.Tool], float64(out.Runs))
			} else {
				// The budget+1 sentinel feeds the mean only; percentiles
				// must describe observed exposure latencies, never a value
				// synthesized for a miss.
				runs[out.Tool] = append(runs[out.Tool], float64(budget+1))
			}
		}
		return true
	})

	for _, name := range DiffTools {
		mean, ci := stats.MeanCI95(runs[name])
		es := exposedRuns[name]
		s := ToolDiffSummary{
			Tool:      name,
			Sessions:  sessions[name],
			Exposed:   exposed[name],
			Missed:    sessions[name] - exposed[name],
			MeanRuns:  mean,
			CI95Runs:  ci,
			P50Runs:   stats.Percentile(es, 50),
			P90Runs:   stats.Percentile(es, 90),
			P99Runs:   stats.Percentile(es, 99),
			Delays:    delays[name],
			TotalRuns: totalRuns[name],
		}
		if s.Sessions > 0 {
			s.ExposureRate = float64(s.Exposed) / float64(s.Sessions)
		}
		rep.Tools = append(rep.Tools, s)
	}
	if runErr != nil {
		rep.Cancelled = true
	}
	if len(rep.Violations) > 0 {
		rep.ReproOK = false
	}
	if reanalyzeInc > 0 {
		rep.Reanalysis = &ReanalysisStats{
			FullNS:        reanalyzeFull,
			IncrementalNS: reanalyzeInc,
			Speedup:       float64(reanalyzeFull) / float64(reanalyzeInc),
		}
	}
	rep.Metrics = o.Metrics.Snapshot()
	return rep
}

// diffProgram runs the full oracle for corpus index i. ctx aborts the
// program's sessions at their next run boundary; an uncancellable ctx
// leaves them byte-identical to the context-free harness.
func (o DiffOptions) diffProgram(ctx context.Context, i int) *ProgramDiff {
	size := o.Size
	if o.Mixed {
		size = genprog.Size(i % 3)
	}
	cfg := genprog.SizeConfig(o.Seed+int64(i), size)
	if o.TSO {
		cfg = genprog.TSOSizeConfig(o.Seed+int64(i), size)
	}
	p := genprog.Generate(cfg)
	m := p.Manifest()
	pd := &ProgramDiff{
		Program:  p.Name(),
		Seed:     cfg.Seed,
		Size:     size.String(),
		Bugs:     len(m.Bugs),
		Threads:  p.Threads(),
		Objects:  p.Objects(),
		RunsUsed: make(map[string]int, len(DiffTools)),
	}
	fail := func(format string, args ...any) {
		pd.Violations = append(pd.Violations, fmt.Sprintf("%s: ", p.Name())+fmt.Sprintf(format, args...))
	}

	// adaptiveTool builds the session's tool and (when the controller is
	// attached and enabled) its per-target Tuner, diverting the engine's
	// metrics to the controller's per-target registry. With no controller
	// the tool is built exactly as the fixed harness builds it.
	adaptiveTool := func(name, target string) (core.Tool, *control.Target) {
		if o.Controller != nil {
			if tgt := o.Controller.TargetWithRegistry(target, obs.New()); tgt != nil {
				return newDiffTool(name, tgt.Registry(), o.TSO), tgt
			}
		}
		return newDiffTool(name, o.Metrics, o.TSO), nil
	}

	fullNS, incNS, err := checkReproducible(p, cfg)
	if err != nil {
		fail("%v", err)
	}
	pd.ReanalyzeFullNS, pd.ReanalyzeIncNS = fullNS, incNS

	// Armed sessions: each planted bug in isolation, under each tool.
	for _, bug := range m.Bugs {
		variant := p.ArmOnly(bug.Index).Prog()
		for ti, name := range DiffTools {
			budget := o.MaxRuns
			if name == "tsvd" {
				budget = o.TSVDRuns
			}
			tool, tgt := adaptiveTool(name, fmt.Sprintf("%s/bug%d/%s", p.Name(), bug.Index, name))
			s := &core.Session{
				Prog:     variant,
				Tool:     tool,
				MaxRuns:  budget,
				BaseSeed: o.Seed + int64(i)*1_000_003 + int64(bug.Index)*1009 + int64(ti)*101 + 1,
				Metrics:  o.Metrics,
			}
			if tgt != nil {
				s.Tuner = tgt
			}
			out := s.ExposeCtx(ctx)
			tgt.ObserveOutcome(out)
			pd.RunsUsed[name] += len(out.Runs)
			oc := BugOutcome{Bug: bug.Index, Kind: bug.Kind.String(), Tool: name}
			if out.Bug != nil {
				if err := m.Check(out.Bug); err != nil {
					fail("tool %s, bug %d armed: %v", name, bug.Index, err)
				} else if out.Bug.ObjName() != bug.Obj {
					fail("tool %s, bug %d armed: exposed %s, want %s", name, bug.Index, out.Bug.ObjName(), bug.Obj)
				} else {
					oc.Runs = out.Bug.Run
					oc.Delays = out.Bug.Delays.Count
					if bug.Kind == core.StaleRead && out.Bug.Fence != nil {
						// Repair verification: apply the proposed fence and
						// replay the exposing schedule — the stale read must
						// be gone, and nothing else may fault.
						fenced := p.ArmOnly(bug.Index).WithFence(out.Bug.Fence.After).Prog()
						if rr := core.Replay(fenced, out.Bug, core.Options{}); rr.Fault != nil {
							fail("tool %s, bug %d armed: fence at %s does not repair: %v",
								name, bug.Index, out.Bug.Fence.After, rr.Fault.Err)
						}
						// And without the fence the same schedule reproduces.
						if rr := core.Replay(variant, out.Bug, core.Options{}); !rr.Reproduced {
							fail("tool %s, bug %d armed: exposing schedule did not replay: %s",
								name, bug.Index, rr.String())
						}
					}
				}
			}
			for _, err := range out.RunErrs() {
				fail("tool %s, bug %d armed: %v", name, bug.Index, err)
			}
			pd.Outcomes = append(pd.Outcomes, oc)
		}
	}

	// Disarmed control: the zero-FP invariant. No delay schedule any tool
	// can produce may fault a program whose probes are all guarded.
	disarmed := p.DisarmAll().Prog()
	for ti, name := range DiffTools {
		tool, tgt := adaptiveTool(name, fmt.Sprintf("%s/disarmed/%s", p.Name(), name))
		s := &core.Session{
			Prog:     disarmed,
			Tool:     tool,
			MaxRuns:  o.DisarmRuns,
			BaseSeed: o.Seed + int64(i)*1_000_003 + int64(ti)*7 + 500_009,
			Metrics:  o.Metrics,
		}
		if tgt != nil {
			s.Tuner = tgt
		}
		out := s.ExposeCtx(ctx)
		tgt.ObserveOutcome(out)
		pd.RunsUsed[name] += len(out.Runs)
		if out.Bug != nil {
			fail("tool %s, disarmed: false positive: %v", name, out.Bug)
		}
		for _, err := range out.RunErrs() {
			fail("tool %s, disarmed: %v", name, err)
		}
	}
	return pd
}

// checkReproducible asserts the per-seed bit-reproducibility claims:
// regeneration is byte-identical (script and manifest), the preparation
// trace is byte-identical across executions with one seed, and all four
// analyzers — sequential, sharded, streaming, and incremental — produce
// byte-identical plans from it. The two preparation runs double as a
// repeated-campaign measurement: the returned timing compares a
// from-scratch Analyze of the second trace against an incremental
// re-analysis seeded by the first campaign's plan.
func checkReproducible(p *genprog.Program, cfg genprog.Config) (fullNS, incNS int64, err error) {
	aopts := core.Options{TSO: cfg.TSO}
	q := genprog.Generate(cfg)
	if p.Fingerprint() != q.Fingerprint() {
		return 0, 0, fmt.Errorf("regeneration diverged for seed %d", cfg.Seed)
	}
	if !bytes.Equal(p.Manifest().JSON(), q.Manifest().JSON()) {
		return 0, 0, fmt.Errorf("manifest regeneration diverged for seed %d", cfg.Seed)
	}

	prepSeed := cfg.Seed*31 + 7
	tr1, err := diffPrepTrace(p, prepSeed)
	if err != nil {
		return 0, 0, err
	}
	tr2, err := diffPrepTrace(p, prepSeed)
	if err != nil {
		return 0, 0, err
	}
	var b1, b2 bytes.Buffer
	if err := tr1.WriteBinary(&b1); err != nil {
		return 0, 0, fmt.Errorf("encode trace: %w", err)
	}
	if err := tr2.WriteBinary(&b2); err != nil {
		return 0, 0, fmt.Errorf("encode trace: %w", err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		return 0, 0, fmt.Errorf("preparation trace not reproducible at seed %d", prepSeed)
	}

	encode := func(plan *core.Plan) ([]byte, error) {
		var buf bytes.Buffer
		err := plan.WriteJSON(&buf)
		return buf.Bytes(), err
	}
	boot := core.AnalyzeIncremental(nil, nil, tr1, aopts)
	want, err := encode(core.Analyze(tr1, aopts))
	if err != nil {
		return 0, 0, err
	}
	par, err := encode(core.AnalyzeParallel(tr1, aopts, 4))
	if err != nil {
		return 0, 0, err
	}
	if !bytes.Equal(want, par) {
		return 0, 0, fmt.Errorf("AnalyzeParallel plan diverged from Analyze at seed %d", prepSeed)
	}
	var stream bytes.Buffer
	if err := tr1.WriteStream(&stream); err != nil {
		return 0, 0, fmt.Errorf("write stream: %w", err)
	}
	sp, err := core.AnalyzeStream(bytes.NewReader(stream.Bytes()), aopts)
	if err != nil {
		return 0, 0, fmt.Errorf("streaming analysis: %w", err)
	}
	got, err := encode(sp)
	if err != nil {
		return 0, 0, err
	}
	if !bytes.Equal(want, got) {
		return 0, 0, fmt.Errorf("AnalyzeStream plan diverged from Analyze at seed %d", prepSeed)
	}
	bb, err := encode(boot)
	if err != nil {
		return 0, 0, err
	}
	if !bytes.Equal(want, bb) {
		return 0, 0, fmt.Errorf("AnalyzeIncremental bootstrap diverged from Analyze at seed %d", prepSeed)
	}

	// Second campaign over the re-recorded trace: from-scratch vs
	// incremental, timed, and still byte-identical.
	t0 := time.Now()
	fullPlan := core.Analyze(tr2, aopts)
	fullNS = time.Since(t0).Nanoseconds()
	t1 := time.Now()
	incPlan := core.AnalyzeIncremental(boot, tr1, tr2, aopts)
	incNS = time.Since(t1).Nanoseconds()
	want2, err := encode(fullPlan)
	if err != nil {
		return 0, 0, err
	}
	got2, err := encode(incPlan)
	if err != nil {
		return 0, 0, err
	}
	if !bytes.Equal(want2, got2) {
		return 0, 0, fmt.Errorf("AnalyzeIncremental re-analysis diverged from Analyze at seed %d", prepSeed)
	}
	return fullNS, incNS, nil
}

// diffPrepTrace performs one delay-free preparation run and returns its
// trace.
func diffPrepTrace(p *genprog.Program, seed int64) (*trace.Trace, error) {
	wf := core.NewWaffle(core.Options{})
	wf.SetLabel(p.Name())
	hook := wf.HookForRun(1, nil)
	res := p.Prog().Execute(seed, hook)
	if res.Fault != nil {
		return nil, fmt.Errorf("preparation run faulted: %v", res.Fault.Err)
	}
	if res.Err != nil {
		return nil, fmt.Errorf("preparation run: %w", res.Err)
	}
	wf.FinishPreparation(&core.RunReport{Run: 1, End: res.End})
	tr := wf.PrepTrace()
	if tr == nil {
		return nil, fmt.Errorf("no preparation trace")
	}
	return tr, nil
}
