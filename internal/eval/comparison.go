package eval

import (
	"waffle/internal/apps"
	"waffle/internal/baselines"
	"waffle/internal/core"
	"waffle/internal/stats"
	"waffle/internal/wafflebasic"
)

// ToolRow summarizes one detector's performance over the 18-bug set — the
// empirical companion to Table 1's qualitative design matrix: the same
// bugs, run under four different answers to the four design questions.
type ToolRow struct {
	Tool        string
	Exposed     int     // bugs exposed (majority of attempts)
	MedianRuns  float64 // median runs-to-expose across exposed bugs
	MeanRuns    float64 // mean runs-to-expose across exposed bugs
	MedianSlow  float64 // median end-to-end slowdown across exposed bugs
	TotalDelays int     // delays injected across all exposing sessions
}

// ComparisonTools builds one fresh instance of each compared detector.
var ComparisonTools = []struct {
	Name string
	New  func() core.Tool
}{
	{"Waffle", func() core.Tool { return core.NewWaffle(core.Options{}) }},
	{"WaffleBasic", func() core.Tool { return wafflebasic.New(core.Options{}) }},
	{"SingleDelay (RaceFuzzer/CTrigger-style)", func() core.Tool { return baselines.NewSingleDelay(core.Options{}) }},
	{"DataCollider-style sampler", func() core.Tool { return baselines.NewDataCollider() }},
}

// EvalToolComparison runs every compared tool over the bug set.
func EvalToolComparison(opt BugOptions) []ToolRow {
	opt = opt.withDefaults()
	bugs := apps.AllBugs()
	var rows []ToolRow
	for _, tool := range ComparisonTools {
		row := ToolRow{Tool: tool.Name}
		var runs []float64
		var slows []float64
		for _, test := range bugs {
			exposed := 0
			var bugRuns, bugSlows []float64
			for rep := 0; rep < opt.Repetitions; rep++ {
				s := &core.Session{
					Prog:     test.Prog,
					Tool:     tool.New(),
					MaxRuns:  opt.MaxRuns,
					BaseSeed: opt.Seed + int64(rep)*10_007,
				}
				out := s.Expose()
				if out.Bug != nil {
					exposed++
					bugRuns = append(bugRuns, float64(out.Bug.Run))
					bugSlows = append(bugSlows, out.Slowdown())
					row.TotalDelays += out.Bug.Delays.Count
				}
			}
			if exposed*2 > opt.Repetitions {
				row.Exposed++
				runs = append(runs, stats.MedianFloat(bugRuns))
				slows = append(slows, stats.MedianFloat(bugSlows))
			}
		}
		row.MedianRuns = stats.MedianFloat(runs)
		row.MeanRuns = stats.Mean(runs)
		row.MedianSlow = stats.MedianFloat(slows)
		rows = append(rows, row)
	}
	return rows
}
