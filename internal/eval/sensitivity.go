package eval

import (
	"waffle/internal/apps"
	"waffle/internal/core"
	"waffle/internal/sim"
	"waffle/internal/stats"
)

// Sensitivity sweeps over Waffle's two numeric design parameters — the
// near-miss window δ and the delay multiplier α. The paper fixes δ=100ms
// (TSVD's default, §6.1) and α=1.15 (§4.3) without a sweep; these
// experiments characterize how sensitive the headline result (18/18 bugs,
// mostly 2 runs) is to those choices, extending Table 7's ablation style
// to the continuous parameters.

// SweepPoint is one parameter setting's aggregate over the 18 bugs.
type SweepPoint struct {
	Value       float64 // the swept parameter (ms for δ, ratio for α)
	Exposed     int     // bugs exposed (majority of attempts)
	AvgRuns     float64 // mean runs-to-expose across exposed bugs
	AvgPairs    float64 // mean candidate-set size on the bug inputs
	AvgSlowdown float64 // mean end-to-end slowdown across exposed bugs
}

// SweepOptions bounds a sensitivity sweep.
type SweepOptions struct {
	Seed        int64
	Repetitions int // sessions per bug per point (0 = 5)
	MaxRuns     int // 0 = 20
	Bugs        int // cap on bug inputs (0 = all 18)
}

func (o SweepOptions) withDefaults() SweepOptions {
	if o.Repetitions <= 0 {
		o.Repetitions = 5
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = 20
	}
	return o
}

// EvalWindowSweep varies the near-miss window δ.
func EvalWindowSweep(windowsMS []float64, opt SweepOptions) []SweepPoint {
	opt = opt.withDefaults()
	if len(windowsMS) == 0 {
		windowsMS = []float64{10, 25, 50, 100, 200}
	}
	var points []SweepPoint
	for _, ms := range windowsMS {
		opts := core.Options{Window: sim.Duration(ms * float64(sim.Millisecond))}
		points = append(points, sweepPoint(ms, opts, opt))
	}
	return points
}

// EvalAlphaSweep varies the delay multiplier α.
func EvalAlphaSweep(alphas []float64, opt SweepOptions) []SweepPoint {
	opt = opt.withDefaults()
	if len(alphas) == 0 {
		alphas = []float64{0.9, 1.0, 1.05, 1.15, 1.5, 2.0}
	}
	var points []SweepPoint
	for _, a := range alphas {
		opts := core.Options{Alpha: a}
		points = append(points, sweepPoint(a, opts, opt))
	}
	return points
}

// sweepPoint measures one parameter setting over the bug set.
func sweepPoint(value float64, tool core.Options, opt SweepOptions) SweepPoint {
	bugs := apps.AllBugs()
	if opt.Bugs > 0 && len(bugs) > opt.Bugs {
		bugs = bugs[:opt.Bugs]
	}
	p := SweepPoint{Value: value}
	var runs, slows, pairs []float64
	for _, test := range bugs {
		exposed := 0
		var bugRuns, bugSlows []float64
		for rep := 0; rep < opt.Repetitions; rep++ {
			wf := core.NewWaffle(tool)
			s := &core.Session{
				Prog:     test.Prog,
				Tool:     wf,
				MaxRuns:  opt.MaxRuns,
				BaseSeed: opt.Seed + int64(rep)*10_007,
			}
			out := s.Expose()
			if out.Bug != nil {
				exposed++
				bugRuns = append(bugRuns, float64(out.Bug.Run))
				bugSlows = append(bugSlows, out.Slowdown())
			}
			if plan := wf.Plan(); plan != nil && rep == 0 {
				pairs = append(pairs, float64(len(plan.Pairs)))
			}
		}
		if exposed*2 > opt.Repetitions {
			p.Exposed++
			runs = append(runs, stats.MedianFloat(bugRuns))
			slows = append(slows, stats.MedianFloat(bugSlows))
		}
	}
	p.AvgRuns = stats.Mean(runs)
	p.AvgPairs = stats.Mean(pairs)
	p.AvgSlowdown = stats.Mean(slows)
	return p
}
