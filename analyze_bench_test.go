// Benchmarks for the trace analyzer: sequential, sharded (-parallel-analyze),
// and streaming, all over the suite's largest preparation trace. Run with
//
//	go test -bench Analyze -benchtime 1x .
//
// The speedup benchmark reports the measured sequential/parallel wall-clock
// ratio as a metric rather than asserting it: on a single-core host
// (GOMAXPROCS=1) the sharded analyzer cannot beat the sequential one — the
// shard/merge structure is pure overhead without parallel execution — so the
// ratio is only meaningful alongside the reported gomaxprocs value.
package waffle_test

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"waffle/internal/apps"
	"waffle/internal/core"
	"waffle/internal/sim"
	"waffle/internal/trace"
	"waffle/internal/vclock"
)

// bigTrace caches the largest preparation trace in the benchmark suite
// (currently NpgSQL/test-018, ~1.3k events); the scan over every test runs
// once per `go test` process.
var bigTrace struct {
	once sync.Once
	tr   *trace.Trace
	name string
}

func largestPrepTrace(tb testing.TB) *trace.Trace {
	tb.Helper()
	bigTrace.once.Do(func() {
		for _, app := range apps.Registry() {
			for _, test := range app.Tests {
				tr := prepTraceOf(tb, test, 11)
				if bigTrace.tr == nil || len(tr.Events) > len(bigTrace.tr.Events) {
					bigTrace.tr, bigTrace.name = tr, test.Name
				}
			}
		}
	})
	if bigTrace.tr == nil {
		tb.Fatal("no preparation trace found")
	}
	return bigTrace.tr
}

// reportEventRate publishes analyzer/recorder throughput: events consumed
// per wall-clock second across all iterations.
func reportEventRate(b *testing.B, eventsPerOp int) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(eventsPerOp)*float64(b.N)/s, "events/sec")
	}
}

func BenchmarkAnalyzeSequential(b *testing.B) {
	tr := largestPrepTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Analyze(tr, core.Options{})
	}
	b.ReportMetric(float64(len(tr.Events)), "events")
	reportEventRate(b, len(tr.Events))
}

func BenchmarkAnalyzeParallel(b *testing.B) {
	tr := largestPrepTrace(b)
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.AnalyzeParallel(tr, core.Options{}, workers)
			}
			reportEventRate(b, len(tr.Events))
		})
	}
}

func BenchmarkAnalyzeStream(b *testing.B) {
	tr := largestPrepTrace(b)
	var buf bytes.Buffer
	if err := tr.WriteStream(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.AnalyzeStream(bytes.NewReader(data), core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	reportEventRate(b, len(tr.Events))
}

// BenchmarkAnalyzeSpeedupAt4Workers times the sequential and the 4-worker
// sharded analyzer back to back on the same trace and reports their ratio.
// Read speedup-x together with gomaxprocs: ≥2 is the target on a 4-core
// host, while gomaxprocs=1 pins the ratio below 1 by construction.
func BenchmarkAnalyzeSpeedupAt4Workers(b *testing.B) {
	tr := largestPrepTrace(b)
	var seq, par time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		core.Analyze(tr, core.Options{})
		seq += time.Since(t0)
		t1 := time.Now()
		core.AnalyzeParallel(tr, core.Options{}, 4)
		par += time.Since(t1)
	}
	if par > 0 {
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup-x")
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// BenchmarkRecorderRecord measures the recording hot path: RecordEvent
// into per-thread chunked shards. allocs/op must report 0 — only one chunk
// allocation per shardChunkEvents appends, which rounds away — and
// events/sec is the recorder throughput number published to
// BENCH_analyze.json. The recorder is swapped out every 2^20 events (off
// the timer) to bound the benchmark's memory footprint at large b.N.
func BenchmarkRecorderRecord(b *testing.B) {
	clk := vclock.New(1)
	rec := trace.NewRecorder("bench", 1)
	ev := trace.Event{TID: 1, Site: "bench.go:1", Obj: 1, Kind: trace.KindUse, Clock: clk}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%(1<<20) == 0 {
			b.StopTimer()
			rec = trace.NewRecorder("bench", 1)
			b.StartTimer()
		}
		ev.T = sim.Time(i)
		rec.RecordEvent(ev)
	}
	reportEventRate(b, 1)
}

// rerecordedTrace simulates the next campaign's preparation run over an
// unchanged program: identical event content in a fresh slice, clock
// pointers shared — exactly what re-recording a deterministic run yields.
func rerecordedTrace(tr *trace.Trace) *trace.Trace {
	return &trace.Trace{
		Label:  tr.Label,
		Seed:   tr.Seed,
		End:    tr.End,
		Events: append([]trace.Event(nil), tr.Events...),
	}
}

// BenchmarkAnalyzeIncrementalClean measures re-analysis of an unchanged
// trace — the repeated-campaign fast path where every object folds from
// the cache and every instance replays its recorded edges.
func BenchmarkAnalyzeIncrementalClean(b *testing.B) {
	tr := largestPrepTrace(b)
	tr2 := rerecordedTrace(tr)
	prev := core.AnalyzeIncremental(nil, nil, tr, core.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.AnalyzeIncremental(prev, tr, tr2, core.Options{})
	}
	reportEventRate(b, len(tr2.Events))
}

// BenchmarkAnalyzeIncrementalSpeedup times a from-scratch Analyze and a
// clean incremental re-analysis back to back on the same trace and reports
// their ratio — the repeated-campaign win published to BENCH_analyze.json
// (target: ≥3× on the largest built-in trace).
func BenchmarkAnalyzeIncrementalSpeedup(b *testing.B) {
	tr := largestPrepTrace(b)
	tr2 := rerecordedTrace(tr)
	prev := core.AnalyzeIncremental(nil, nil, tr, core.Options{})
	var full, inc time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		core.Analyze(tr2, core.Options{})
		full += time.Since(t0)
		t1 := time.Now()
		core.AnalyzeIncremental(prev, tr, tr2, core.Options{})
		inc += time.Since(t1)
	}
	if inc > 0 {
		b.ReportMetric(full.Seconds()/inc.Seconds(), "speedup-x")
	}
}
