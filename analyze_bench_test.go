// Benchmarks for the trace analyzer: sequential, sharded (-parallel-analyze),
// and streaming, all over the suite's largest preparation trace. Run with
//
//	go test -bench Analyze -benchtime 1x .
//
// The speedup benchmark reports the measured sequential/parallel wall-clock
// ratio as a metric rather than asserting it: on a single-core host
// (GOMAXPROCS=1) the sharded analyzer cannot beat the sequential one — the
// shard/merge structure is pure overhead without parallel execution — so the
// ratio is only meaningful alongside the reported gomaxprocs value.
package waffle_test

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"waffle/internal/apps"
	"waffle/internal/core"
	"waffle/internal/trace"
)

// bigTrace caches the largest preparation trace in the benchmark suite
// (currently NpgSQL/test-018, ~1.3k events); the scan over every test runs
// once per `go test` process.
var bigTrace struct {
	once sync.Once
	tr   *trace.Trace
	name string
}

func largestPrepTrace(tb testing.TB) *trace.Trace {
	tb.Helper()
	bigTrace.once.Do(func() {
		for _, app := range apps.Registry() {
			for _, test := range app.Tests {
				tr := prepTraceOf(tb, test, 11)
				if bigTrace.tr == nil || len(tr.Events) > len(bigTrace.tr.Events) {
					bigTrace.tr, bigTrace.name = tr, test.Name
				}
			}
		}
	})
	if bigTrace.tr == nil {
		tb.Fatal("no preparation trace found")
	}
	return bigTrace.tr
}

func BenchmarkAnalyzeSequential(b *testing.B) {
	tr := largestPrepTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Analyze(tr, core.Options{})
	}
	b.ReportMetric(float64(len(tr.Events)), "events")
}

func BenchmarkAnalyzeParallel(b *testing.B) {
	tr := largestPrepTrace(b)
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.AnalyzeParallel(tr, core.Options{}, workers)
			}
		})
	}
}

func BenchmarkAnalyzeStream(b *testing.B) {
	tr := largestPrepTrace(b)
	var buf bytes.Buffer
	if err := tr.WriteStream(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.AnalyzeStream(bytes.NewReader(data), core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeSpeedupAt4Workers times the sequential and the 4-worker
// sharded analyzer back to back on the same trace and reports their ratio.
// Read speedup-x together with gomaxprocs: ≥2 is the target on a 4-core
// host, while gomaxprocs=1 pins the ratio below 1 by construction.
func BenchmarkAnalyzeSpeedupAt4Workers(b *testing.B) {
	tr := largestPrepTrace(b)
	var seq, par time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		core.Analyze(tr, core.Options{})
		seq += time.Since(t0)
		t1 := time.Now()
		core.AnalyzeParallel(tr, core.Options{}, 4)
		par += time.Since(t1)
	}
	if par > 0 {
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup-x")
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}
