// Benchmarks regenerating the paper's tables and figures. Each benchmark
// recomputes one evaluation artifact per iteration (on a subsampled suite
// so -bench stays fast) and reports its headline numbers as custom
// metrics; `go run ./cmd/waffle-bench -all` produces the full-resolution
// tables recorded in EXPERIMENTS.md.
package waffle_test

import (
	"testing"

	"waffle/internal/apps"
	"waffle/internal/core"
	"waffle/internal/eval"
	"waffle/internal/stats"
	"waffle/internal/wafflebasic"
)

// benchSuite bounds per-app tests during -bench runs.
const benchSuiteTests = 6

func BenchmarkTable1DesignMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := eval.Table1()
		if len(rows) != 7 {
			b.Fatal("table 1 shape")
		}
	}
}

func BenchmarkFigure2TimingConditions(b *testing.B) {
	var last []eval.Fig2Point
	for i := 0; i < b.N; i++ {
		last = eval.EvalFigure2(eval.Fig2Options{Seed: 1, Reps: 10})
	}
	// Headline shape: the TSV curve's width (range) and the MemOrder
	// curve's threshold position.
	var tsvRange, moThreshold float64
	for _, p := range last {
		if p.TSVRate >= 0.5 {
			tsvRange += 1
		}
		if moThreshold == 0 && p.MemOrdRate >= 0.5 {
			moThreshold = p.DelayMS
		}
	}
	b.ReportMetric(tsvRange, "tsv-range-points")
	b.ReportMetric(moThreshold, "memorder-threshold-ms")
}

func BenchmarkTable2Sites(b *testing.B) {
	var rows []eval.SuiteRow
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, a := range apps.Registry() {
			if !a.InTable2 {
				continue
			}
			rows = append(rows, eval.EvalSuite(a, eval.SuiteOptions{Seed: 1, MaxTests: benchSuiteTests}))
		}
	}
	var moOverTSV float64
	n := 0
	for _, r := range rows {
		if r.TSVInstrSites > 0 {
			moOverTSV += r.MOInstrSites / r.TSVInstrSites
			n++
		}
	}
	// §3.3: MO instrumentation sites are ~10× TSV's for most apps.
	b.ReportMetric(moOverTSV/float64(n), "mo-over-tsv-instr-sites")
}

func BenchmarkTable3Benchmarks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reg := apps.Registry()
		total := 0
		for _, a := range reg {
			total += len(a.Tests)
		}
		if total < 900 {
			b.Fatalf("suite shrank: %d tests", total)
		}
	}
}

func BenchmarkTable4Detection(b *testing.B) {
	var rows []eval.BugRow
	for i := 0; i < b.N; i++ {
		rows = eval.EvalTable4(eval.BugOptions{Seed: 1, Repetitions: 3, MaxRuns: 25, Majority: 2})
	}
	waffleExposed, basicExposed := 0, 0
	for _, r := range rows {
		if r.WaffleRuns > 0 {
			waffleExposed++
		}
		if r.BasicRuns > 0 {
			basicExposed++
		}
	}
	b.ReportMetric(float64(waffleExposed), "waffle-bugs-exposed")
	b.ReportMetric(float64(basicExposed), "basic-bugs-exposed")
}

func BenchmarkTable5Overhead(b *testing.B) {
	var row eval.SuiteRow
	for i := 0; i < b.N; i++ {
		row = eval.EvalSuite(apps.ByName("NpgSQL"), eval.SuiteOptions{Seed: 1, MaxTests: benchSuiteTests})
	}
	b.ReportMetric(row.BasicR2Pct, "basic-r2-overhead-pct")
	b.ReportMetric(row.WaffleR2Pct, "waffle-r2-overhead-pct")
}

func BenchmarkTable6Delays(b *testing.B) {
	var row eval.SuiteRow
	for i := 0; i < b.N; i++ {
		row = eval.EvalSuite(apps.ByName("NetMQ"), eval.SuiteOptions{Seed: 1, MaxTests: benchSuiteTests})
	}
	if row.WaffleDelayDurMS > 0 {
		b.ReportMetric(row.BasicDelayDurMS/row.WaffleDelayDurMS, "basic-over-waffle-delay-dur")
	}
}

func BenchmarkTable7Ablations(b *testing.B) {
	var rows []eval.AblationRow
	for i := 0; i < b.N; i++ {
		rows = eval.EvalTable7(eval.BugOptions{Seed: 1, Repetitions: 3, MaxRuns: 12, Majority: 2, MaxTests: 3})
	}
	for _, r := range rows {
		switch r.Name {
		case "no parent-child analysis (§4.1)":
			b.ReportMetric(r.Slowdown, "no-parent-child-slowdown")
		case "no custom delay length (§4.3)":
			b.ReportMetric(r.Slowdown, "no-custom-length-slowdown")
		}
	}
}

func BenchmarkFigure5Overlap(b *testing.B) {
	var row eval.SuiteRow
	for i := 0; i < b.N; i++ {
		row = eval.EvalSuite(apps.ByName("NSubstitute"), eval.SuiteOptions{Seed: 1, MaxTests: benchSuiteTests})
	}
	b.ReportMetric(row.BasicOverlap*100, "basic-overlap-pct")
	b.ReportMetric(row.TSVDOverlap*100, "tsvd-overlap-pct")
}

// BenchmarkExposeBug2 measures the raw cost of one full Waffle session
// (prep + detection) on a sparse known bug.
func BenchmarkExposeBug2(b *testing.B) {
	var target *apps.Test
	for _, t := range apps.AllBugs() {
		if t.Bug.ID == "Bug-2" {
			target = t
		}
	}
	for i := 0; i < b.N; i++ {
		s := &core.Session{Prog: target.Prog, Tool: core.NewWaffle(core.Options{}), MaxRuns: 10, BaseSeed: int64(i + 1)}
		if out := s.Expose(); out.Bug == nil {
			b.Fatal("missed")
		}
	}
}

// BenchmarkWaffleBasicSession measures the baseline's session cost on the
// same bug, for comparison.
func BenchmarkWaffleBasicSession(b *testing.B) {
	var target *apps.Test
	for _, t := range apps.AllBugs() {
		if t.Bug.ID == "Bug-2" {
			target = t
		}
	}
	for i := 0; i < b.N; i++ {
		s := &core.Session{Prog: target.Prog, Tool: wafflebasic.New(core.Options{}), MaxRuns: 10, BaseSeed: int64(i + 1)}
		if out := s.Expose(); out.Bug == nil {
			b.Fatal("missed")
		}
	}
}

// BenchmarkRepeatExpose measures the statistical harness itself.
func BenchmarkRepeatExpose(b *testing.B) {
	var target *apps.Test
	for _, t := range apps.AllBugs() {
		if t.Bug.ID == "Bug-14" {
			target = t
		}
	}
	for i := 0; i < b.N; i++ {
		results := stats.RepeatExpose(3, 10, int64(i+1),
			func() core.Program { return target.Prog },
			func() core.Tool { return core.NewWaffle(core.Options{}) })
		if stats.Summarize(results, 2).Exposed == 0 {
			b.Fatal("missed")
		}
	}
}

func BenchmarkToolComparison(b *testing.B) {
	var rows []eval.ToolRow
	for i := 0; i < b.N; i++ {
		rows = eval.EvalToolComparison(eval.BugOptions{Seed: 1, Repetitions: 2, MaxRuns: 20, Majority: 2})
	}
	for _, r := range rows {
		if r.Tool == "Waffle" {
			b.ReportMetric(float64(r.Exposed), "waffle-exposed")
		}
		if r.Tool == "DataCollider-style sampler" {
			b.ReportMetric(float64(r.Exposed), "sampler-exposed")
		}
	}
}

func BenchmarkWindowSweep(b *testing.B) {
	var points []eval.SweepPoint
	for i := 0; i < b.N; i++ {
		points = eval.EvalWindowSweep([]float64{10, 100}, eval.SweepOptions{Seed: 1, Repetitions: 2, MaxRuns: 10})
	}
	b.ReportMetric(float64(points[0].Exposed), "exposed-at-10ms")
	b.ReportMetric(float64(points[1].Exposed), "exposed-at-100ms")
}

func BenchmarkFullHBTradeoff(b *testing.B) {
	var rows []eval.FullHBRow
	for i := 0; i < b.N; i++ {
		rows = eval.EvalFullHB(eval.FullHBOptions{Seed: 1, MaxTests: 4, MaxRuns: 10, Apps: []string{"ApplicationInsights"}})
	}
	r := rows[0]
	b.ReportMetric(r.PartialPairs, "pairs-partial")
	b.ReportMetric(r.FullPairs, "pairs-full")
}

func BenchmarkReplayBug(b *testing.B) {
	var target *apps.Test
	for _, t := range apps.AllBugs() {
		if t.Bug.ID == "Bug-2" {
			target = t
		}
	}
	s := &core.Session{Prog: target.Prog, Tool: core.NewWaffle(core.Options{}), MaxRuns: 10, BaseSeed: 1}
	out := s.Expose()
	if out.Bug == nil {
		b.Fatal("setup failed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := core.Replay(target.Prog, out.Bug, core.Options{}); !rep.Reproduced {
			b.Fatal("replay failed")
		}
	}
}
