module waffle

go 1.22
