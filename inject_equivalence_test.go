// Bit-identity of the clock-agnostic Injector on the simulated clock:
// driving detection runs through the legacy memmodel.Hook entry point
// (OnAccess, *sim.Thread) and through the generic core.Exec seam (Access,
// with the thread wrapped in an opaque adapter) must produce byte-identical
// injection schedules over the preparation trace of every built-in bug
// input. This is the refactor contract of live mode: introducing the
// Exec abstraction changed nothing about simulated injection — the wall
// clock is an additional implementation, not a behavioral fork.
package waffle_test

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"waffle/internal/apps"
	"waffle/internal/core"
	"waffle/internal/memmodel"
	"waffle/internal/obs"
	"waffle/internal/sim"
	"waffle/internal/trace"
	"waffle/internal/vclock"
)

// opaqueExec wraps *sim.Thread so the injector sees only the core.Exec /
// core.ClockedExec interfaces, never the concrete simulator type — the
// exact seam a non-sim runtime drives.
type opaqueExec struct{ t *sim.Thread }

func (e opaqueExec) ID() int                  { return e.t.ID() }
func (e opaqueExec) Now() sim.Time            { return e.t.Now() }
func (e opaqueExec) Sleep(d sim.Duration)     { e.t.Sleep(d) }
func (e opaqueExec) Rand() float64            { return e.t.Rand() }
func (e opaqueExec) ForkClock() *vclock.Clock { return vclock.Of(e.t) }

// scheduleBytes serializes everything observable about a detection run's
// injection activity: stats, every interval in order, and the plan's
// decayed per-site probabilities.
func scheduleBytes(inj *core.Injector, plan *core.Plan, res core.ExecResult) []byte {
	var b bytes.Buffer
	st := inj.Stats()
	fmt.Fprintf(&b, "count=%d total=%d skipped=%d end=%d fault=%v\n",
		st.Count, int64(st.Total), st.Skipped, int64(res.End), res.Fault != nil)
	for _, iv := range st.Intervals {
		fmt.Fprintf(&b, "iv %s %d %d\n", iv.Site, int64(iv.Start), int64(iv.End))
	}
	sites := make([]string, 0, len(plan.Probs))
	for s := range plan.Probs {
		sites = append(sites, string(s))
	}
	sort.Strings(sites)
	for _, s := range sites {
		fmt.Fprintf(&b, "p %s %.17g\n", s, plan.Probs[trace.SiteID(s)])
	}
	return b.Bytes()
}

// runSchedule performs nRuns seeded detection runs against test with a
// fresh clone of plan, delivering accesses to the injector through hook.
func runSchedule(test *apps.Test, plan *core.Plan, seed int64, nRuns int, adapter bool) [][]byte {
	clone := plan.Clone()
	var out [][]byte
	for run := 0; run < nRuns; run++ {
		inj := core.NewInjector(clone, core.Options{})
		var hook memmodel.Hook = inj
		if adapter {
			hook = memmodel.HookFunc(func(t *sim.Thread, site trace.SiteID, obj trace.ObjID, kind trace.Kind, dur sim.Duration) {
				inj.Access(opaqueExec{t}, site, obj, kind, dur)
			})
		}
		res := test.Prog.Execute(seed+int64(run), hook)
		out = append(out, scheduleBytes(inj, clone, res))
		if res.Fault != nil {
			break // the search would stop here; both paths must agree on that
		}
	}
	return out
}

// runScheduleOpts mirrors runSchedule's direct path with opts applied to
// every injector — e.g. a metrics registry attached.
func runScheduleOpts(test *apps.Test, plan *core.Plan, seed int64, nRuns int, opts core.Options) [][]byte {
	clone := plan.Clone()
	var out [][]byte
	for run := 0; run < nRuns; run++ {
		inj := core.NewInjector(clone, opts)
		res := test.Prog.Execute(seed+int64(run), inj)
		out = append(out, scheduleBytes(inj, clone, res))
		if res.Fault != nil {
			break
		}
	}
	return out
}

// planJSON renders a plan to its canonical JSON bytes.
func planJSON(t *testing.T, plan *core.Plan) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := plan.WriteJSON(&buf); err != nil {
		t.Fatalf("encode plan: %v", err)
	}
	return buf.Bytes()
}

// Attaching a metrics registry must not perturb determinism: over every
// built-in bug input, analysis with a registry produces byte-identical
// plans, and detection runs metered by a registry produce byte-identical
// injection schedules (stats, intervals, decayed probabilities, faults).
// This is the observability layer's core contract — instruments only
// observe; they consume no randomness and feed nothing back into decisions.
func TestMetricsRegistryDoesNotPerturbPlansOrSchedules(t *testing.T) {
	reg := obs.New()
	for _, test := range apps.AllBugs() {
		tr := prepTraceOf(t, test, 11)
		bare := core.Analyze(tr, core.Options{})
		metered := core.Analyze(tr, core.Options{Metrics: reg})
		if !bytes.Equal(planJSON(t, bare), planJSON(t, metered)) {
			t.Errorf("%s: metered analysis produced a different plan", test.Name)
			continue
		}
		for _, seed := range []int64{3, 17} {
			plain := runScheduleOpts(test, bare, seed, 3, core.Options{})
			withReg := runScheduleOpts(test, metered, seed, 3, core.Options{Metrics: reg})
			if len(plain) != len(withReg) {
				t.Errorf("%s seed %d: run counts diverged: %d vs %d",
					test.Name, seed, len(plain), len(withReg))
				continue
			}
			for i := range plain {
				if !bytes.Equal(plain[i], withReg[i]) {
					t.Errorf("%s seed %d run %d: metered schedule diverged\nbare:\n%s\nmetered:\n%s",
						test.Name, seed, i+1, plain[i], withReg[i])
				}
			}
		}
	}

	// Not vacuous: the registry must have observed real engine activity
	// while changing none of it.
	snap := reg.Snapshot()
	if snap.Counters["analyze.trace_events"] == 0 {
		t.Error("registry saw no trace events — the metered paths did not run")
	}
	if snap.Counters["inject.delays_injected"] == 0 {
		t.Error("registry saw no injected delays — the metered paths did not inject")
	}
	if err := obs.ValidateSnapshot(snap); err != nil {
		t.Errorf("snapshot invalid after campaign: %v", err)
	}
}

func TestInjectorExecSeamBitIdenticalOnAllApps(t *testing.T) {
	for _, test := range apps.AllBugs() {
		tr := prepTraceOf(t, test, 11)
		plan := core.Analyze(tr, core.Options{})
		for _, seed := range []int64{3, 17} {
			direct := runSchedule(test, plan, seed, 3, false)
			viaExec := runSchedule(test, plan, seed, 3, true)
			if len(direct) != len(viaExec) {
				t.Errorf("%s seed %d: run counts diverged: %d vs %d",
					test.Name, seed, len(direct), len(viaExec))
				continue
			}
			for i := range direct {
				if !bytes.Equal(direct[i], viaExec[i]) {
					t.Errorf("%s seed %d run %d: schedules diverged\nsim path:\n%s\nexec seam:\n%s",
						test.Name, seed, i+1, direct[i], viaExec[i])
				}
			}
			// Same seed, same plan: the sim path must also be deterministic
			// against itself (the property the adapter comparison rests on).
			again := runSchedule(test, plan, seed, 3, false)
			for i := range direct {
				if !bytes.Equal(direct[i], again[i]) {
					t.Errorf("%s seed %d run %d: sim path nondeterministic", test.Name, seed, i+1)
				}
			}
		}
	}
}
